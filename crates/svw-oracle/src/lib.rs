//! # svw-oracle — differential golden-model verification
//!
//! The rest of the workspace establishes correctness *relatively*: every change must
//! keep results byte-identical to the previous binary (or declare a new model
//! version). That freezes bugs in place just as faithfully as it freezes features.
//! This crate adds an *absolute* check in the spirit of differential ISA testing: a
//! trivially simple in-order golden model ([`svw_isa::ArchState`]) replays the same
//! decoded trace and is compared, committed instruction by committed instruction,
//! against the out-of-order pipeline's architectural effects.
//!
//! [`DifferentialChecker`] implements [`svw_cpu::CommitObserver`]. Drive a cell with
//! [`svw_cpu::Cpu::run_observed`] and the checker cross-checks, in program order:
//!
//! * **sequencing** — commits are dense and in order, and each committed PC matches
//!   the trace;
//! * **load values** — every committed load's value equals what the golden model
//!   reads at the load's commit point. For loads the SVW/SSBF filter excused from
//!   re-execution this is exactly the paper's safety property ("a filtered load is
//!   never truly vulnerable"): the filter's decision is only sound if the value the
//!   load obtained speculatively equals sequential memory at commit;
//! * **store effects** — every committed store writes the address/width/value the
//!   golden model computes, and store sequence numbers retire densely in order;
//! * **final state** — after the last commit, the pipeline's committed-memory image
//!   equals the golden model's image word for word.
//!
//! Only the *first* divergence is recorded (everything after it executes in a
//! corrupted shadow of the golden state); it carries both states and enough context
//! to name the violated mechanism. The checker never panics on a mismatch — the
//! sweep runner turns a recorded [`Divergence`] into a failed cell, keeping it
//! distinguishable from a simulator panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use svw_cpu::{CommitObserver, CommitRecord, FwdOrigin};
use svw_isa::{Addr, ArchState, DynInst, InstSeq, IntKeyMap, OpClass, Pc, Value};
use svw_mem::CommittedMemory;

/// Options for a differential-oracle run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleOptions {
    /// Corrupt the observed value of the N-th committed load (0-based, counted in
    /// commit order) before checking it. The pipeline is untouched — only the
    /// checker's view of the record is corrupted — so this proves end to end that
    /// the oracle detects a wrong value rather than silently agreeing with
    /// whatever it is shown.
    pub inject_fault: Option<u64>,
}

/// Which cross-check a [`Divergence`] violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Commits were not dense in program order.
    Sequence,
    /// The committed PC does not match the trace.
    Pc,
    /// A load the SVW/SSBF filter excused from re-execution committed a value that
    /// differs from sequential memory — the paper's safety property is violated.
    FilteredLoadValue,
    /// A load that obtained its value by store-to-load forwarding committed a value
    /// that differs from sequential memory.
    ForwardedLoadValue,
    /// A load satisfied by redundant load elimination committed a wrong value.
    EliminatedLoadValue,
    /// A committed load's value differs from sequential memory (no more specific
    /// mechanism applies).
    LoadValue,
    /// A committed store's address, width, or value differs from the golden model.
    StoreEffect,
    /// Store sequence numbers did not retire densely in order.
    StoreSsn,
    /// The final committed-memory image differs from the golden model's.
    FinalMemory,
    /// The pipeline finished without committing the whole trace, or committed a
    /// different number of stores than the golden model executed.
    RetiredCount,
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DivergenceKind::Sequence => "commit-sequence",
            DivergenceKind::Pc => "pc-mismatch",
            DivergenceKind::FilteredLoadValue => "filtered-load-value (SVW safety violation)",
            DivergenceKind::ForwardedLoadValue => "forwarded-load-value",
            DivergenceKind::EliminatedLoadValue => "eliminated-load-value",
            DivergenceKind::LoadValue => "load-value",
            DivergenceKind::StoreEffect => "store-effect",
            DivergenceKind::StoreSsn => "store-ssn",
            DivergenceKind::FinalMemory => "final-memory",
            DivergenceKind::RetiredCount => "retired-count",
        };
        f.write_str(s)
    }
}

/// The first point at which the pipeline's committed state departed from the golden
/// model, with both states rendered into `detail`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Sequence number of the first divergent instruction (the trace position for
    /// end-of-run checks, where no single instruction is at fault).
    pub seq: InstSeq,
    /// Program counter of the divergent instruction (0 for end-of-run checks).
    pub pc: Pc,
    /// Which cross-check failed.
    pub kind: DivergenceKind,
    /// Human-readable description carrying both states.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergent instruction seq {} (pc {:#x}): {}: {}",
            self.seq, self.pc, self.kind, self.detail
        )
    }
}

/// Summary of one differential-oracle run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// Committed loads cross-checked against the golden model.
    pub loads_checked: u64,
    /// Committed stores cross-checked against the golden model.
    pub stores_checked: u64,
    /// Filtered loads whose bytes *were* overwritten by a store inside their
    /// vulnerability window but whose value still matched sequential memory —
    /// i.e. the overwrite was value-identical (a silent store). These are sound
    /// (the safety property is about values, not SSNs) and counted only as a
    /// diagnostic of how hard the workload leans on silent stores.
    pub silent_window_excursions: u64,
    /// The first divergence, if any.
    pub divergence: Option<Divergence>,
}

/// A [`CommitObserver`] that replays the decoded trace on a sequential golden model
/// and cross-checks every committed instruction. See the crate docs for the checks.
#[derive(Debug)]
pub struct DifferentialChecker<'a> {
    insts: &'a [DynInst],
    arch: ArchState,
    opts: OracleOptions,
    /// Expected sequence number of the next commit (commits must be dense).
    next_seq: InstSeq,
    /// Expected SSN of the next retiring store (SSNs start at 1 and retire densely).
    next_store_ssn: u64,
    loads_checked: u64,
    stores_checked: u64,
    silent_window_excursions: u64,
    /// Youngest store SSN to have written each 4-byte granule, for classifying
    /// filtered-load divergences and counting silent window excursions.
    granule_writer: IntKeyMap<Addr, u64>,
    divergence: Option<Divergence>,
}

/// The 4-byte granules an access covers. Accesses are naturally aligned and never
/// cross an 8-byte boundary, so this is one granule for W4 and two for W8.
fn granules(addr: Addr, bytes: u64) -> impl Iterator<Item = Addr> {
    (0..bytes.max(4)).step_by(4).map(move |o| (addr & !0x3) + o)
}

impl<'a> DifferentialChecker<'a> {
    /// Creates a checker for one cell: `insts` must be the same decoded instruction
    /// arena the pipeline replays.
    pub fn new(insts: &'a [DynInst], opts: OracleOptions) -> Self {
        DifferentialChecker {
            insts,
            arch: ArchState::new(),
            opts,
            next_seq: 0,
            next_store_ssn: 1,
            loads_checked: 0,
            stores_checked: 0,
            silent_window_excursions: 0,
            granule_writer: IntKeyMap::default(),
            divergence: None,
        }
    }

    /// The first divergence found so far, if any.
    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_ref()
    }

    /// Summary of the run so far.
    pub fn report(&self) -> OracleReport {
        OracleReport {
            loads_checked: self.loads_checked,
            stores_checked: self.stores_checked,
            silent_window_excursions: self.silent_window_excursions,
            divergence: self.divergence.clone(),
        }
    }

    fn diverge(&mut self, seq: InstSeq, pc: Pc, kind: DivergenceKind, detail: String) {
        if self.divergence.is_none() {
            self.divergence = Some(Divergence {
                seq,
                pc,
                kind,
                detail,
            });
        }
    }

    fn check_load(&mut self, r: &CommitRecord, inst_pc: Pc, oracle: (Addr, Value)) {
        let (oracle_addr, oracle_value) = oracle;
        let load_index = self.loads_checked;
        self.loads_checked += 1;
        let (Some(addr), Some(value)) = (r.addr, r.value) else {
            self.diverge(
                r.seq,
                inst_pc,
                DivergenceKind::LoadValue,
                "pipeline committed a load with no resolved address/value".to_string(),
            );
            return;
        };
        let mut observed = value;
        if self.opts.inject_fault == Some(load_index) {
            observed ^= 1;
        }
        if addr != oracle_addr {
            self.diverge(
                r.seq,
                inst_pc,
                DivergenceKind::LoadValue,
                format!(
                    "pipeline accessed address {addr:#x} but the golden model computes \
                     {oracle_addr:#x}"
                ),
            );
            return;
        }
        let bytes = r.width.map_or(8, |w| w.bytes());
        // Youngest store to have written any granule the load covers (0 = never
        // written by a committed store).
        let youngest_writer = granules(addr, bytes)
            .filter_map(|g| self.granule_writer.get(&g).copied())
            .max()
            .unwrap_or(0);
        if observed != oracle_value {
            let boundary = r.window_boundary.map_or(0, |b| b.raw());
            let (kind, mechanism) = if r.filtered {
                (
                    DivergenceKind::FilteredLoadValue,
                    format!(
                        "the SSBF filtered this load although store SSN {youngest_writer} \
                         (> window boundary SSN {boundary}) overwrote its bytes"
                    ),
                )
            } else {
                match r.fwd {
                    FwdOrigin::Queue(ssn) => (
                        DivergenceKind::ForwardedLoadValue,
                        format!("value was forwarded from in-flight store SSN {}", ssn.raw()),
                    ),
                    FwdOrigin::Buffer(ssn) => (
                        DivergenceKind::ForwardedLoadValue,
                        format!(
                            "value came from the best-effort forwarding buffer entry of \
                             store SSN {}",
                            ssn.raw()
                        ),
                    ),
                    FwdOrigin::Memory if r.eliminated => (
                        DivergenceKind::EliminatedLoadValue,
                        "value was supplied by redundant load elimination".to_string(),
                    ),
                    FwdOrigin::Memory => (
                        DivergenceKind::LoadValue,
                        "value was read from committed memory".to_string(),
                    ),
                }
            };
            self.diverge(
                r.seq,
                inst_pc,
                kind,
                format!(
                    "pipeline committed value {observed:#x} at {addr:#x} but the golden \
                     model reads {oracle_value:#x}; {mechanism}"
                ),
            );
            return;
        }
        // Value agreed. For a filtered load whose granules a window-interior store
        // did overwrite, the overwrite must have been value-identical (silent):
        // count it as a diagnostic.
        if r.filtered {
            let boundary = r.window_boundary.map_or(0, |b| b.raw());
            if youngest_writer > boundary {
                self.silent_window_excursions += 1;
            }
        }
    }

    fn check_store(&mut self, r: &CommitRecord, inst_pc: Pc, oracle: (Addr, Value)) {
        let (oracle_addr, oracle_value) = oracle;
        self.stores_checked += 1;
        let (Some(addr), Some(value)) = (r.addr, r.value) else {
            self.diverge(
                r.seq,
                inst_pc,
                DivergenceKind::StoreEffect,
                "pipeline committed a store with no resolved address/value".to_string(),
            );
            return;
        };
        if addr != oracle_addr || value != oracle_value {
            self.diverge(
                r.seq,
                inst_pc,
                DivergenceKind::StoreEffect,
                format!(
                    "pipeline committed store of {value:#x} at {addr:#x} but the golden \
                     model writes {oracle_value:#x} at {oracle_addr:#x}"
                ),
            );
            return;
        }
        let ssn = r.ssn.map_or(0, |s| s.raw());
        if ssn != self.next_store_ssn {
            self.diverge(
                r.seq,
                inst_pc,
                DivergenceKind::StoreSsn,
                format!(
                    "store retired with SSN {ssn} but dense in-order retirement expects \
                     SSN {}",
                    self.next_store_ssn
                ),
            );
            return;
        }
        self.next_store_ssn += 1;
        let bytes = r.width.map_or(8, |w| w.bytes());
        for g in granules(addr, bytes) {
            self.granule_writer.insert(g, ssn);
        }
    }
}

impl CommitObserver for DifferentialChecker<'_> {
    fn on_commit(&mut self, r: &CommitRecord) {
        // Everything after the first divergence would be compared against a golden
        // state that no longer tracks the pipeline; keep only the first.
        if self.divergence.is_some() {
            return;
        }
        if r.seq != self.next_seq {
            let expected = self.next_seq;
            self.diverge(
                r.seq,
                r.pc,
                DivergenceKind::Sequence,
                format!(
                    "pipeline committed seq {} but program order expects seq {expected}",
                    r.seq
                ),
            );
            return;
        }
        self.next_seq += 1;
        let Some(inst) = self.insts.get(r.seq as usize) else {
            self.diverge(
                r.seq,
                r.pc,
                DivergenceKind::Sequence,
                format!(
                    "committed seq {} is beyond the trace ({} instructions)",
                    r.seq,
                    self.insts.len()
                ),
            );
            return;
        };
        if inst.pc != r.pc {
            self.diverge(
                r.seq,
                inst.pc,
                DivergenceKind::Pc,
                format!(
                    "pipeline committed pc {:#x} but the trace holds pc {:#x}",
                    r.pc, inst.pc
                ),
            );
            return;
        }
        // Execute the golden model one instruction forward. The arena is shared and
        // immutable; the golden model re-resolves the access on its own clone.
        let mut inst = inst.clone();
        let effect = self.arch.execute(&mut inst);
        match (r.cls, effect.mem_read, effect.mem_write) {
            (OpClass::Load, Some(read), _) => self.check_load(r, inst.pc, read),
            (OpClass::Store, _, Some(write)) => self.check_store(r, inst.pc, write),
            (OpClass::Load, None, _) | (OpClass::Store, _, None) => self.diverge(
                r.seq,
                inst.pc,
                DivergenceKind::Pc,
                format!(
                    "pipeline committed a {:?} but the trace instruction is {:?}",
                    r.cls,
                    inst.class()
                ),
            ),
            _ => {}
        }
    }

    fn on_finish(&mut self, memory: &CommittedMemory) {
        if self.divergence.is_some() {
            return;
        }
        if self.next_seq != self.insts.len() as InstSeq {
            let (committed, len) = (self.next_seq, self.insts.len());
            self.diverge(
                committed,
                0,
                DivergenceKind::RetiredCount,
                format!("pipeline committed {committed} of {len} trace instructions"),
            );
            return;
        }
        if memory.committed_stores() != self.stores_checked {
            let (got, want) = (memory.committed_stores(), self.stores_checked);
            self.diverge(
                self.next_seq,
                0,
                DivergenceKind::RetiredCount,
                format!(
                    "committed memory records {got} stores but {want} store commits were \
                     observed"
                ),
            );
            return;
        }
        // Word-for-word final-state comparison. Both images apply exactly the same
        // store sequence from the same background, so their touched sets must match
        // as well as their values.
        let got = memory.image().touched_snapshot();
        let want = self.arch.memory().touched_snapshot();
        let mut gi = got.iter().peekable();
        let mut wi = want.iter().peekable();
        loop {
            match (gi.peek(), wi.peek()) {
                (None, None) => break,
                (Some(&&(ga, gv)), Some(&&(wa, wv))) if ga == wa => {
                    if gv != wv {
                        self.diverge(
                            self.next_seq,
                            0,
                            DivergenceKind::FinalMemory,
                            format!(
                                "final committed memory holds {gv:#x} at {ga:#x} but the \
                                 golden model holds {wv:#x}"
                            ),
                        );
                        return;
                    }
                    gi.next();
                    wi.next();
                }
                (Some(&&(ga, gv)), w) if w.is_none_or(|&&(wa, _)| ga < wa) => {
                    self.diverge(
                        self.next_seq,
                        0,
                        DivergenceKind::FinalMemory,
                        format!(
                            "committed memory touched word {ga:#x} (value {gv:#x}) that the \
                             golden model never wrote"
                        ),
                    );
                    return;
                }
                (_, Some(&&(wa, wv))) => {
                    self.diverge(
                        self.next_seq,
                        0,
                        DivergenceKind::FinalMemory,
                        format!(
                            "golden model wrote {wv:#x} at word {wa:#x} but committed memory \
                             never touched it"
                        ),
                    );
                    return;
                }
                // The guarded arm above already caught every (Some, None) pair; this
                // arm exists only to satisfy exhaustiveness.
                (Some(_), None) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svw_cpu::{Cpu, LsqOrganization, MachineConfig, ReexecMode};
    use svw_workloads::WorkloadProfile;

    fn nlq_svw() -> MachineConfig {
        MachineConfig::eight_wide(
            "nlq-svw",
            LsqOrganization::Nlq {
                store_exec_bandwidth: 2,
            },
            ReexecMode::Svw(svw_core::SvwConfig::paper_default()),
        )
    }

    #[test]
    fn clean_run_has_no_divergence() {
        let program = WorkloadProfile::quicktest().generate(6_000, 1);
        let mut checker =
            DifferentialChecker::new(program.instructions(), OracleOptions::default());
        let stats = Cpu::new(nlq_svw(), &program).run_observed(&mut checker);
        let report = checker.report();
        assert!(report.divergence.is_none(), "{:?}", report.divergence);
        assert_eq!(report.loads_checked, stats.loads_retired);
        assert_eq!(report.stores_checked, stats.stores_retired);
    }

    #[test]
    fn observed_run_is_byte_identical_to_unobserved() {
        let program = WorkloadProfile::quicktest().generate(5_000, 2);
        let plain = Cpu::new(nlq_svw(), &program).run();
        let mut checker =
            DifferentialChecker::new(program.instructions(), OracleOptions::default());
        let observed = Cpu::new(nlq_svw(), &program).run_observed(&mut checker);
        assert_eq!(format!("{plain:?}"), format!("{observed:?}"));
    }

    #[test]
    fn injected_fault_is_detected_and_names_the_instruction() {
        let program = WorkloadProfile::quicktest().generate(4_000, 3);
        let mut checker = DifferentialChecker::new(
            program.instructions(),
            OracleOptions {
                inject_fault: Some(0),
            },
        );
        let _ = Cpu::new(nlq_svw(), &program).run_observed(&mut checker);
        let d = checker
            .divergence()
            .expect("fault must be detected")
            .clone();
        assert!(matches!(
            d.kind,
            DivergenceKind::LoadValue
                | DivergenceKind::FilteredLoadValue
                | DivergenceKind::ForwardedLoadValue
                | DivergenceKind::EliminatedLoadValue
        ));
        let rendered = d.to_string();
        assert!(
            rendered.contains("first divergent instruction seq"),
            "{rendered}"
        );
    }

    #[test]
    fn granules_cover_w4_and_w8() {
        assert_eq!(granules(0x1000, 4).collect::<Vec<_>>(), vec![0x1000]);
        assert_eq!(
            granules(0x1000, 8).collect::<Vec<_>>(),
            vec![0x1000, 0x1004]
        );
    }
}
