//! A set-associative cache model with true-LRU replacement.

use svw_isa::Addr;

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access latency in cycles on a hit.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// The paper's L1 caches: 32 KB, 2-way, 2-cycle access, 64-byte lines.
    pub fn paper_l1() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 2,
        }
    }

    /// The paper's L2 cache: 2 MB, 8-way, 15-cycle access, 128-byte lines.
    pub fn paper_l2() -> Self {
        CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            assoc: 8,
            line_bytes: 128,
            hit_latency: 15,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }

    fn validate(&self) {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.assoc >= 1, "associativity must be at least 1");
        assert!(
            self.size_bytes.is_multiple_of(self.assoc * self.line_bytes),
            "capacity must be a whole number of sets"
        );
        assert!(
            self.sets().is_power_of_two(),
            "set count must be a power of two"
        );
    }
}

/// Hit/miss statistics for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Lines evicted while dirty (writeback traffic).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Overall miss rate.
    pub fn miss_rate(&self) -> f64 {
        let acc = self.reads + self.writes;
        if acc == 0 {
            0.0
        } else {
            (self.read_misses + self.write_misses) as f64 / acc as f64
        }
    }
}

#[derive(Clone, Debug)]
struct Line {
    tag: Addr,
    valid: bool,
    dirty: bool,
    /// Larger = more recently used.
    lru: u64,
}

/// A set-associative, write-allocate, writeback cache with true-LRU replacement.
///
/// Only tags are modelled (data lives in the functional [`crate::CommittedMemory`]);
/// the cache exists to produce hit/miss latencies and occupancy statistics for the
/// timing model.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig`]).
    pub fn new(config: CacheConfig) -> Self {
        let mut cache = Cache {
            config,
            sets: Vec::new(),
            stats: CacheStats::default(),
            tick: 0,
        };
        cache.reset(config);
        cache
    }

    /// Restores the empty (all-invalid) state for `config` — observationally identical
    /// to [`Cache::new`] — reusing the existing set/way storage where the geometry
    /// allows, so a recycled simulation arena does not reallocate cache tag arrays.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig`]).
    pub fn reset(&mut self, config: CacheConfig) {
        config.validate();
        let line = Line {
            tag: 0,
            valid: false,
            dirty: false,
            lru: 0,
        };
        self.sets.resize(config.sets(), Vec::new());
        for set in &mut self.sets {
            set.clear();
            set.resize(config.assoc, line.clone());
        }
        self.config = config;
        self.stats = CacheStats::default();
        self.tick = 0;
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_index(&self, addr: Addr) -> usize {
        let line = addr / self.config.line_bytes as u64;
        (line as usize) & (self.config.sets() - 1)
    }

    #[inline]
    fn tag_of(&self, addr: Addr) -> Addr {
        addr / self.config.line_bytes as u64 / self.config.sets() as u64
    }

    /// Probes the cache without modifying replacement or statistics state.
    pub fn probe(&self, addr: Addr) -> bool {
        let tag = self.tag_of(addr);
        self.sets[self.set_index(addr)]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Performs an access. Returns `true` on a hit, `false` on a miss (in which case
    /// the line is allocated, possibly evicting the LRU way).
    pub fn access(&mut self, addr: Addr, is_write: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.tag_of(addr);
        let set_idx = self.set_index(addr);
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            line.dirty |= is_write;
            return true;
        }
        // Miss: allocate into the LRU way.
        if is_write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("cache set has at least one way");
        if victim.valid && victim.dirty {
            self.stats.dirty_evictions += 1;
        }
        victim.valid = true;
        victim.dirty = is_write;
        victim.tag = tag;
        victim.lru = tick;
        false
    }

    /// Invalidates the line containing `addr` (a coherence invalidation). Returns
    /// `true` if a valid line was present.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        let tag = self.tag_of(addr);
        let set_idx = self.set_index(addr);
        for line in &mut self.sets[set_idx] {
            if line.valid && line.tag == tag {
                line.valid = false;
                line.dirty = false;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> Cache {
        // 2 sets x 2 ways x 64-byte lines = 256 bytes.
        Cache::new(CacheConfig {
            size_bytes: 256,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 2,
        })
    }

    #[test]
    fn paper_geometries_are_consistent() {
        assert_eq!(CacheConfig::paper_l1().sets(), 256);
        assert_eq!(CacheConfig::paper_l2().sets(), 2048);
        let _ = Cache::new(CacheConfig::paper_l1());
        let _ = Cache::new(CacheConfig::paper_l2());
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny_cache();
        assert!(!c.access(0x1000, false));
        assert!(c.access(0x1000, false));
        assert!(c.access(0x1038, false)); // same 64-byte line
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().reads, 3);
    }

    #[test]
    fn lru_replacement_evicts_least_recent() {
        let mut c = tiny_cache();
        // Three lines mapping to set 0 (line addresses 0, 2, 4 with 2 sets).
        let a = 0x000;
        let b = 0x080;
        let d = 0x100;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        c.access(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn write_allocate_and_dirty_eviction() {
        let mut c = tiny_cache();
        c.access(0x000, true); // write miss, allocates dirty
        c.access(0x080, false);
        c.access(0x100, false); // evicts 0x000 (dirty)
        c.access(0x180, false); // evicts 0x080 (clean)
        assert_eq!(c.stats().dirty_evictions, 1);
        assert_eq!(c.stats().write_misses, 1);
    }

    #[test]
    fn invalidation_removes_line() {
        let mut c = tiny_cache();
        c.access(0x200, false);
        assert!(c.probe(0x200));
        assert!(c.invalidate(0x200));
        assert!(!c.probe(0x200));
        assert!(!c.invalidate(0x200));
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = tiny_cache();
        c.access(0x000, false);
        let before = *c.stats();
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = tiny_cache();
        c.access(0x000, false);
        c.access(0x000, false);
        c.access(0x000, false);
        c.access(0x000, false);
        assert!((c.stats().miss_rate() - 0.25).abs() < 1e-12);
    }

    /// Arena-reuse contract: after heavy use, `reset` must restore a state
    /// observationally identical to `new` — for the same geometry and across a
    /// geometry change.
    #[test]
    fn reset_matches_new() {
        let mut c = tiny_cache();
        for i in 0..100 {
            c.access(i * 0x40, i % 3 == 0);
        }
        c.reset(*tiny_cache().config());
        assert_eq!(format!("{c:?}"), format!("{:?}", tiny_cache()));

        c.reset(CacheConfig::paper_l1());
        assert_eq!(
            format!("{c:?}"),
            format!("{:?}", Cache::new(CacheConfig::paper_l1()))
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 3 * 1024,
            assoc: 3,
            line_bytes: 48,
            hit_latency: 1,
        });
    }
}
