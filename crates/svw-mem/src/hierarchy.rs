//! The two-level on-chip memory hierarchy.

use svw_isa::Addr;

use crate::{Cache, CacheConfig, CacheStats};

/// Whether an access comes from the instruction fetch path or the data path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch.
    Fetch,
    /// Data read (load execution or load re-execution).
    DataRead,
    /// Data write (store retirement).
    DataWrite,
}

/// Configuration of the full hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles (the paper uses 150).
    pub memory_latency: u64,
}

impl HierarchyConfig {
    /// The paper's memory system: 32 KB/2-way/2-cycle L1s, 2 MB/8-way/15-cycle L2,
    /// 150-cycle memory.
    pub fn paper_default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::paper_l1(),
            l1d: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
            memory_latency: 150,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Aggregated per-level statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct HierarchyStats {
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Accesses that went all the way to memory.
    pub memory_accesses: u64,
}

/// The L1I/L1D/L2/memory hierarchy. An access returns the total latency the requester
/// observes; inclusion is maintained loosely (L2 is probed/allocated on L1 misses).
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    memory_accesses: u64,
}

impl MemoryHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        MemoryHierarchy {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            memory_accesses: 0,
        }
    }

    /// Restores the empty (all-cold) state for `config` — observationally identical to
    /// [`MemoryHierarchy::new`] — reusing the per-level tag storage where geometries
    /// allow.
    pub fn reset(&mut self, config: HierarchyConfig) {
        self.l1i.reset(config.l1i);
        self.l1d.reset(config.l1d);
        self.l2.reset(config.l2);
        self.memory_accesses = 0;
        self.config = config;
    }

    /// The configured latencies/geometries.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Performs an access and returns its total latency in cycles.
    pub fn access(&mut self, kind: AccessKind, addr: Addr) -> u64 {
        let (l1, l1_cfg) = match kind {
            AccessKind::Fetch => (&mut self.l1i, &self.config.l1i),
            AccessKind::DataRead | AccessKind::DataWrite => (&mut self.l1d, &self.config.l1d),
        };
        let is_write = kind == AccessKind::DataWrite;
        let l1_hit = l1.access(addr, is_write);
        if l1_hit {
            return l1_cfg.hit_latency;
        }
        let l2_hit = self.l2.access(addr, is_write);
        if l2_hit {
            return l1_cfg.hit_latency + self.config.l2.hit_latency;
        }
        self.memory_accesses += 1;
        l1_cfg.hit_latency + self.config.l2.hit_latency + self.config.memory_latency
    }

    /// Latency of a data access that is known to hit in the L1 (used for the best-case
    /// load latency in configuration descriptions).
    pub fn l1d_hit_latency(&self) -> u64 {
        self.config.l1d.hit_latency
    }

    /// Probes the L1 data cache without side effects.
    pub fn l1d_probe(&self, addr: Addr) -> bool {
        self.l1d.probe(addr)
    }

    /// Applies a coherence invalidation to the data-side caches.
    pub fn invalidate_line(&mut self, addr: Addr) {
        self.l1d.invalidate(addr);
        self.l2.invalidate(addr);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            memory_accesses: self.memory_accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_composition() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::paper_default());
        // Cold access: L1 miss + L2 miss + memory.
        assert_eq!(h.access(AccessKind::DataRead, 0x1000), 2 + 15 + 150);
        // Now everything is warm.
        assert_eq!(h.access(AccessKind::DataRead, 0x1000), 2);
        // Evict nothing; a nearby line misses L1 but may hit L2 only if in the same
        // 128-byte L2 line.
        assert_eq!(h.access(AccessKind::DataRead, 0x1040), 2 + 15);
        assert_eq!(h.stats().memory_accesses, 1);
    }

    #[test]
    fn fetch_and_data_use_separate_l1s() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::paper_default());
        let _ = h.access(AccessKind::Fetch, 0x40_0000);
        // The same address on the data side still misses L1 (but hits L2).
        assert_eq!(h.access(AccessKind::DataRead, 0x40_0000), 2 + 15);
        let s = h.stats();
        assert_eq!(s.l1i.reads, 1);
        assert_eq!(s.l1d.reads, 1);
    }

    #[test]
    fn writes_allocate() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::paper_default());
        let _ = h.access(AccessKind::DataWrite, 0x2000);
        assert_eq!(h.access(AccessKind::DataRead, 0x2000), 2);
        assert!(h.l1d_probe(0x2000));
    }

    #[test]
    fn invalidation_forces_refetch() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::paper_default());
        let _ = h.access(AccessKind::DataRead, 0x3000);
        h.invalidate_line(0x3000);
        assert!(!h.l1d_probe(0x3000));
        assert_eq!(h.access(AccessKind::DataRead, 0x3000), 2 + 15 + 150);
    }

    #[test]
    fn reset_matches_new() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::paper_default());
        for i in 0..200 {
            let _ = h.access(AccessKind::DataRead, i * 8);
            let _ = h.access(AccessKind::Fetch, 0x40_0000 + i * 4);
        }
        h.reset(HierarchyConfig::paper_default());
        assert_eq!(
            format!("{h:?}"),
            format!(
                "{:?}",
                MemoryHierarchy::new(HierarchyConfig::paper_default())
            )
        );
    }

    #[test]
    fn l1d_hit_latency_matches_config() {
        let h = MemoryHierarchy::new(HierarchyConfig::paper_default());
        assert_eq!(h.l1d_hit_latency(), 2);
    }
}
