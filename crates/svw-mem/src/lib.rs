//! # svw-mem — memory-system substrate
//!
//! The SVW paper's machine has a two-level on-chip memory system: 32 KB 2-way L1
//! instruction and data caches with 2-cycle access, a 2 MB 8-way 15-cycle L2, and a
//! 150-cycle main memory, with the L1 data cache 2-way interleaved for load bandwidth
//! and a *single* read/write port used by store retirement — the port that load
//! re-execution must share and that SVW decongests.
//!
//! This crate provides that substrate:
//!
//! * [`Cache`] — a set-associative, LRU, write-allocate cache model with hit/miss
//!   statistics;
//! * [`MemoryHierarchy`] — L1I + L1D + unified L2 + main memory, returning access
//!   latencies for the timing model;
//! * [`BankedPorts`] and [`SharedPort`] — per-cycle port budgeting for the interleaved
//!   execution ports and the shared retirement/re-execution port;
//! * [`CommittedMemory`] — the functional image of architectural memory as of the last
//!   committed store, which is what a speculatively issued load observes when it reads
//!   the data cache (and therefore the source of memory-ordering mis-speculation
//!   values in the simulator).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod committed;
mod hierarchy;
mod ports;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use committed::CommittedMemory;
pub use hierarchy::{AccessKind, HierarchyConfig, HierarchyStats, MemoryHierarchy};
pub use ports::{BankedPorts, SharedPort};
