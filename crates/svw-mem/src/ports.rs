//! Per-cycle cache-port budgeting.
//!
//! The paper's load-execution bandwidth comes from a 2-way interleaved data cache (two
//! loads per cycle, one per bank), while store retirement and load re-execution share a
//! *single* read/write port — the contention SVW exists to relieve. These two tiny
//! budget trackers model exactly that.

use svw_isa::Addr;

/// A set of address-interleaved, single-access-per-cycle cache banks (the load
/// execution ports).
#[derive(Clone, Debug)]
pub struct BankedPorts {
    line_bytes: u64,
    banks: usize,
    /// Cycle number each bank was last used in.
    last_used: Vec<u64>,
}

impl BankedPorts {
    /// Creates `banks` banks interleaved at `line_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two or `line_bytes` is zero.
    pub fn new(banks: usize, line_bytes: u64) -> Self {
        let mut ports = BankedPorts {
            line_bytes,
            banks,
            last_used: Vec::new(),
        };
        ports.reset(banks, line_bytes);
        ports
    }

    /// Restores the all-banks-idle state for the given geometry, reusing the per-bank
    /// bookkeeping storage.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two or `line_bytes` is zero.
    pub fn reset(&mut self, banks: usize, line_bytes: u64) {
        assert!(banks.is_power_of_two(), "bank count must be a power of two");
        assert!(line_bytes > 0, "interleave granularity must be non-zero");
        self.line_bytes = line_bytes;
        self.banks = banks;
        self.last_used.clear();
        self.last_used.resize(banks, u64::MAX);
    }

    /// The bank an address maps to.
    #[inline]
    pub fn bank_of(&self, addr: Addr) -> usize {
        ((addr / self.line_bytes) as usize) & (self.banks - 1)
    }

    /// Attempts to use the bank for `addr` during `cycle`. Returns `true` (and marks
    /// the bank busy for that cycle) if it was free.
    pub fn try_use(&mut self, addr: Addr, cycle: u64) -> bool {
        let b = self.bank_of(addr);
        if self.last_used[b] == cycle {
            false
        } else {
            self.last_used[b] = cycle;
            true
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }
}

/// A single structural resource usable by at most one requester per cycle, with the
/// caller responsible for offering it to requesters in priority order (the simulator
/// offers store commit first, then load re-execution, as the paper specifies).
#[derive(Clone, Copy, Debug, Default)]
pub struct SharedPort {
    last_used: Option<u64>,
    uses: u64,
    conflicts: u64,
}

impl SharedPort {
    /// Creates an idle port.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restores the idle state (no uses, no conflicts).
    pub fn reset(&mut self) {
        *self = SharedPort::default();
    }

    /// Returns `true` if the port is free during `cycle`.
    pub fn is_free(&self, cycle: u64) -> bool {
        self.last_used != Some(cycle)
    }

    /// Attempts to acquire the port for `cycle`. Returns `true` on success.
    pub fn try_acquire(&mut self, cycle: u64) -> bool {
        if self.is_free(cycle) {
            self.last_used = Some(cycle);
            self.uses += 1;
            true
        } else {
            self.conflicts += 1;
            false
        }
    }

    /// Total successful acquisitions.
    pub fn uses(&self) -> u64 {
        self.uses
    }

    /// Total rejected acquisitions (a measure of port contention).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banked_ports_allow_one_access_per_bank_per_cycle() {
        let mut p = BankedPorts::new(2, 64);
        // 0x000 and 0x040 are adjacent lines → different banks.
        assert_ne!(p.bank_of(0x000), p.bank_of(0x040));
        assert!(p.try_use(0x000, 1));
        assert!(p.try_use(0x040, 1));
        // Same bank again in the same cycle: rejected.
        assert!(!p.try_use(0x080, 1));
        // Next cycle it frees up.
        assert!(p.try_use(0x080, 2));
    }

    #[test]
    fn shared_port_single_use_per_cycle() {
        let mut p = SharedPort::new();
        assert!(p.is_free(5));
        assert!(p.try_acquire(5));
        assert!(!p.is_free(5));
        assert!(!p.try_acquire(5));
        assert!(p.try_acquire(6));
        assert_eq!(p.uses(), 2);
        assert_eq!(p.conflicts(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_bank_count_panics() {
        let _ = BankedPorts::new(3, 64);
    }
}
