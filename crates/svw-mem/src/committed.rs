//! The committed (architectural) memory image seen by the data cache.

use svw_isa::{Addr, MemWidth, MemoryImage, Value};

/// The functional contents of memory *as of the last committed store*.
///
/// A speculatively issued load that does not forward from an in-flight store reads this
/// image; because older in-flight stores have not been applied yet, the value it gets
/// may be stale — which is precisely the memory-ordering mis-speculation that load
/// re-execution (and SVW filtering of it) is about. The re-execution pipeline, running
/// in program order at the commit point, reads the image *after* all older stores have
/// drained into it and therefore always observes the architecturally correct value.
#[derive(Clone, Debug, Default)]
pub struct CommittedMemory {
    image: MemoryImage,
    committed_stores: u64,
}

impl CommittedMemory {
    /// Creates an image holding the deterministic background pattern (the same one the
    /// oracle executor starts from, so the two agree about never-written locations).
    pub fn new() -> Self {
        Self::default()
    }

    /// Restores the untouched-memory state (every location back to the background
    /// pattern), retaining the image's hash-table capacity for reuse.
    pub fn reset(&mut self) {
        self.image.clear();
        self.committed_stores = 0;
    }

    /// Reads the committed value at `addr`.
    pub fn read(&self, addr: Addr, width: MemWidth) -> Value {
        self.image.read(addr, width)
    }

    /// Applies a committing store.
    pub fn commit_store(&mut self, addr: Addr, width: MemWidth, value: Value) {
        self.image.write(addr, width, value);
        self.committed_stores += 1;
    }

    /// Number of stores committed so far.
    pub fn committed_stores(&self) -> u64 {
        self.committed_stores
    }

    /// Shared read-only access to the underlying memory image (differential
    /// verification compares it word-for-word against the oracle's image).
    pub fn image(&self) -> &MemoryImage {
        &self.image
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svw_isa::MemoryImage;

    #[test]
    fn starts_from_background_pattern() {
        let m = CommittedMemory::new();
        assert_eq!(
            m.read(0x4000, MemWidth::W8),
            MemoryImage::background(0x4000)
        );
    }

    #[test]
    fn commit_store_is_visible_to_later_reads() {
        let mut m = CommittedMemory::new();
        m.commit_store(0x100, MemWidth::W8, 77);
        assert_eq!(m.read(0x100, MemWidth::W8), 77);
        m.commit_store(0x104, MemWidth::W4, 0xABCD);
        assert_eq!(m.read(0x104, MemWidth::W4), 0xABCD);
        assert_eq!(m.committed_stores(), 2);
    }

    #[test]
    fn reset_restores_background_reads() {
        let mut m = CommittedMemory::new();
        m.commit_store(0x100, MemWidth::W8, 7);
        m.reset();
        assert_eq!(m.committed_stores(), 0);
        assert_eq!(m.read(0x100, MemWidth::W8), MemoryImage::background(0x100));
    }

    #[test]
    fn stale_read_scenario() {
        // The defining scenario: a load that reads committed memory *before* an older
        // store commits sees the old value.
        let mut m = CommittedMemory::new();
        m.commit_store(0x200, MemWidth::W8, 1);
        let speculative_read = m.read(0x200, MemWidth::W8);
        m.commit_store(0x200, MemWidth::W8, 2); // the "older" store finally commits
        let correct_read = m.read(0x200, MemWidth::W8);
        assert_eq!(speculative_read, 1);
        assert_eq!(correct_read, 2);
        assert_ne!(speculative_read, correct_read);
    }
}
