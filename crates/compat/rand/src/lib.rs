//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without network access, so the real
//! crates.io `rand` cannot be fetched. This crate implements exactly the API surface
//! the workspace uses — `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] sampling methods (`gen`, `gen_bool`, `gen_range`) — over a xoshiro256++
//! generator seeded through SplitMix64.
//!
//! The stream is *not* bit-compatible with crates.io `rand`; it only promises what
//! the simulator relies on: determinism per seed and reasonable statistical quality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (the subset of `rand::SeedableRng` the workspace uses).
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-number generator sampling methods (the subset of `rand::Rng` used here).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution (`f64` in `[0, 1)`,
    /// integers over their full range, `bool` as a fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample(self.next_u64()) < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut |bound| {
            // Unbiased bounded sampling via rejection on the top multiple of `bound`.
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        })
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Maps 64 uniform bits to a sample.
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    fn sample(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`]. `draw` returns a uniform value in
/// `[0, bound)` for any `bound > 0`.
pub trait SampleRange<T> {
    /// Samples one value using the supplied bounded-uniform primitive.
    fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + draw(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + draw(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = draw(1 << 53) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i32 = rng.gen_range(1..4);
            assert!((1..4).contains(&v));
            let u: u64 = rng.gen_range(0..=9);
            assert!(u <= 9);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
