//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds without network access, so the real crates.io `proptest`
//! cannot be fetched. This crate implements the subset of its API that the
//! workspace's property tests use: the [`Strategy`] trait with `prop_map`, range and
//! tuple strategies, [`Just`], weighted unions via [`prop_oneof!`], sized vectors via
//! [`collection::vec`], and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros.
//!
//! Differences from the real crate: inputs are generated from a deterministic
//! per-test seed (derived from the test's name) rather than a fresh entropy source,
//! and failing cases are reported with their generated inputs but *not* shrunk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test deterministic random source handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a generator whose stream is a deterministic function of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the test name
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.inner.gen_range(0..bound)
    }
}

/// A failed property-test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: fmt::Debug;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`] to mix arm types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`], the backing of [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// A weighted union of same-valued strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: fmt::Debug> Union<T> {
    /// Creates a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed incorrectly")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Builds a (optionally weighted) union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with the
/// generated inputs echoed) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }` item becomes
/// a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let echo = ($(::std::clone::Clone::clone(&$arg),)+);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs: {:#?}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        echo
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let mut c = crate::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 5u64..10, b in 0u8..3) {
            prop_assert!((5..10).contains(&a));
            prop_assert!(b < 3);
        }

        #[test]
        fn mapped_and_union_strategies_work(
            v in crate::collection::vec(
                prop_oneof![2 => Just(1u64), 1 => (0u64..4).prop_map(|x| x * 10)],
                1..20,
            )
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in &v {
                prop_assert!(*x == 1 || *x % 10 == 0, "unexpected {x}");
            }
        }

        #[test]
        fn tuples_compose(pair in (0u64..5, 0u64..5)) {
            prop_assert_eq!(pair.0 + pair.1, pair.1 + pair.0);
        }
    }
}
