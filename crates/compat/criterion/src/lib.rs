//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds without network access, so the real crates.io `criterion`
//! cannot be fetched. This crate implements the subset of its API the workspace's
//! benches use — [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros — as a
//! wall-clock harness: each benchmark is warmed up, then timed over repeated
//! batches, and the per-iteration mean, median, and MAD (median absolute deviation)
//! are printed. Median/MAD are robust to scheduler noise, so they are also the
//! basis for baseline comparisons.
//!
//! # Baselines
//!
//! Mirroring real criterion's flags, the harness supports machine-checkable
//! regression gating:
//!
//! * `--save-baseline NAME` writes every benchmark's statistics to
//!   `<baseline dir>/NAME.json` after the run;
//! * `--baseline NAME` loads that file and compares: a benchmark whose median
//!   exceeds `baseline_median × threshold` is a **regression**, and the process
//!   exits with status 1 after reporting all of them;
//! * `--regression-threshold X` sets the ratio (default 1.5; CI uses a generous
//!   2.0 so only order-of-magnitude regressions trip it).
//!
//! The baseline directory is `$CRITERION_BASELINE_DIR` if set, else
//! `$CARGO_MANIFEST_DIR/benches/baselines` (i.e. committed next to the bench
//! sources), else `./benches/baselines`.
//!
//! Unknown `--` flags are rejected with a usage message (exit 2) instead of being
//! silently ignored; a positional argument filters benchmarks by substring, and
//! cargo's own `--bench`/`--profile-time` plumbing flags are accepted and ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

mod baseline;

pub use baseline::BaselineFile;

/// One benchmark's measured statistics, as recorded in the global registry and in
/// baseline files.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchStats {
    /// Benchmark name (`group/id`).
    pub name: String,
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Median of the per-sample per-iteration times, in nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation of the per-sample per-iteration times.
    pub mad_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Total iterations across all samples.
    pub total_iters: u64,
}

/// Results of every benchmark run in this process, for `finalize`'s baseline
/// handling (groups construct separate `Criterion` instances, so the registry is
/// process-global).
static RESULTS: Mutex<Vec<BenchStats>> = Mutex::new(Vec::new());

fn record_result(stats: BenchStats) {
    RESULTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(stats);
}

/// Parsed command-line options, shared by every `Criterion` instance in the
/// process.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CliOptions {
    /// `--test`: run every payload once, untimed.
    pub test_mode: bool,
    /// `--save-baseline NAME`.
    pub save_baseline: Option<String>,
    /// `--baseline NAME`.
    pub baseline: Option<String>,
    /// `--regression-threshold X` (ratio; default 1.5).
    pub threshold: f64,
    /// Positional argument: run only benchmarks whose name contains it.
    pub filter: Option<String>,
}

impl CliOptions {
    /// The default regression threshold: fail when a benchmark is 1.5× slower than
    /// its baseline median.
    pub const DEFAULT_THRESHOLD: f64 = 1.5;
}

/// Parses harness arguments (everything after `--` on a `cargo bench` line).
/// Unknown `--` flags are an error; cargo's own plumbing flags are accepted.
pub fn parse_cli(args: impl Iterator<Item = String>) -> Result<CliOptions, String> {
    let mut opts = CliOptions {
        threshold: CliOptions::DEFAULT_THRESHOLD,
        ..CliOptions::default()
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--test" => opts.test_mode = true,
            // Cargo appends `--bench` when driving bench targets; real criterion
            // accepts and ignores it, and so do we.
            "--bench" => {}
            // Real-criterion plumbing flag (profiling duration); accepted so
            // criterion-shaped invocations don't error, but there is no profiler
            // here to hand the time to.
            "--profile-time" => {
                args.next().ok_or("--profile-time needs a value")?;
            }
            "--save-baseline" => {
                opts.save_baseline =
                    Some(args.next().ok_or("--save-baseline needs a name")?.clone());
            }
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("--baseline needs a name")?.clone());
            }
            "--regression-threshold" => {
                let raw = args.next().ok_or("--regression-threshold needs a value")?;
                opts.threshold = raw
                    .parse::<f64>()
                    .map_err(|_| format!("invalid threshold {raw:?}"))?;
                if !opts.threshold.is_finite() || opts.threshold <= 0.0 {
                    return Err(format!("threshold must be positive, got {raw:?}"));
                }
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?}"));
            }
            positional => {
                if opts.filter.is_some() {
                    return Err(format!("more than one filter given ({positional:?})"));
                }
                opts.filter = Some(positional.to_string());
            }
        }
    }
    Ok(opts)
}

fn usage() -> ! {
    eprintln!("usage: <bench> [FILTER] [--test] [--save-baseline NAME] [--baseline NAME]");
    eprintln!("               [--regression-threshold X]");
    eprintln!("  FILTER                   run only benchmarks whose name contains FILTER");
    eprintln!("  --test                   run each benchmark once, untimed (smoke test)");
    eprintln!("  --save-baseline NAME     write results to <baseline dir>/NAME.json");
    eprintln!("  --baseline NAME          compare against <baseline dir>/NAME.json and");
    eprintln!("                           exit non-zero on regression");
    eprintln!(
        "  --regression-threshold X regression = median > baseline * X (default {})",
        CliOptions::DEFAULT_THRESHOLD
    );
    eprintln!("baseline dir: $CRITERION_BASELINE_DIR, else $CARGO_MANIFEST_DIR/benches/baselines");
    std::process::exit(2);
}

/// The one filter predicate: no filter selects everything, otherwise substring
/// match on the full benchmark name. Solo and grouped benchmarks must share it.
fn name_selected(filter: Option<&str>, name: &str) -> bool {
    filter.is_none_or(|f| name.contains(f))
}

/// The directory baseline JSON files live in.
pub fn baseline_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CRITERION_BASELINE_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        return PathBuf::from(dir).join("benches").join("baselines");
    }
    PathBuf::from("benches").join("baselines")
}

/// Runs the end-of-process baseline handling: compares against `--baseline` (exiting
/// 1 on regression) and writes `--save-baseline`. Called by [`criterion_main!`]
/// after every group has run; a no-op without those flags or in `--test` mode.
pub fn finalize() {
    let opts = match parse_cli(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(_) => return, // configure_from_args already reported and exited
    };
    if opts.test_mode {
        return;
    }
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut regressions = 0usize;
    if let Some(name) = &opts.baseline {
        let path = baseline_dir().join(format!("{name}.json"));
        match BaselineFile::load(&path) {
            Ok(base) => {
                let (report, bad) = baseline::compare(&results, &base, opts.threshold);
                print!("{report}");
                regressions = bad;
            }
            Err(e) => {
                eprintln!(
                    "error: cannot load baseline {name:?} from {}: {e}",
                    path.display()
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(name) = &opts.save_baseline {
        let path = baseline_dir().join(format!("{name}.json"));
        // Merge into any existing file: a run restricted by a name filter must
        // refresh only the benchmarks it actually ran, not silently drop the rest
        // of the baseline (which would un-gate their regressions).
        let mut file = BaselineFile::load(&path).unwrap_or_default();
        file.merge(&BaselineFile::from_results(&results));
        if let Err(e) = file.save(&path) {
            eprintln!(
                "error: cannot save baseline {name:?} to {}: {e}",
                path.display()
            );
            std::process::exit(2);
        }
        println!(
            "saved baseline {name:?} ({} benchmark(s) updated, {} total) to {}",
            results.len(),
            file.benches.len(),
            path.display()
        );
    }
    if regressions > 0 {
        eprintln!(
            "error: {regressions} benchmark(s) regressed beyond {}x the baseline median",
            opts.threshold
        );
        std::process::exit(1);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// `--test` mode: run every benchmark payload exactly once, untimed — a smoke
    /// test that the harness and payloads still work, mirroring real criterion.
    test_mode: bool,
    /// Substring filter from the command line.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Reads the command-line arguments (see the crate docs for the grammar).
    /// Unknown `--` flags print usage and exit with status 2.
    pub fn configure_from_args(mut self) -> Self {
        match parse_cli(std::env::args().skip(1)) {
            Ok(opts) => {
                self.test_mode = opts.test_mode;
                self.filter = opts.filter;
                self
            }
            Err(e) => {
                eprintln!("error: {e}");
                usage();
            }
        }
    }

    fn selected(&self, name: &str) -> bool {
        name_selected(self.filter.as_deref(), name)
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            test_mode: self.test_mode,
            filter: self.filter.clone(),
            throughput: None,
            _parent: self,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !self.selected(name) {
            return self;
        }
        if self.test_mode {
            run_once(name, &mut f);
            return self;
        }
        let stats = run_bench(
            name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        print_report(&stats, None);
        record_result(stats);
        self
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the amount of work per iteration so a rate is reported.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a function under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        if !name_selected(self.filter.as_deref(), name.as_str()) {
            return self;
        }
        if self.test_mode {
            run_once(&name, &mut f);
            return self;
        }
        let stats = run_bench(
            &name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        print_report(&stats, self.throughput.as_ref());
        record_result(stats);
        self
    }

    /// Benchmarks a function over one input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Work-per-iteration declarations for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many abstract elements (e.g. instructions).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier (the `name/parameter` suffix inside a group).
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An identifier made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An identifier made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into the displayed benchmark name (accepts `&str` and [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The displayed identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the payload.
pub struct Bencher {
    mode: BenchMode,
    iters_done: u64,
    elapsed: Duration,
}

enum BenchMode {
    /// Run the payload a fixed number of times, timing the whole batch.
    Batch(u64),
}

impl Bencher {
    /// Runs `payload` for this sample's iteration budget, recording elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        let BenchMode::Batch(n) = self.mode;
        let start = Instant::now();
        for _ in 0..n {
            black_box(payload());
        }
        self.elapsed = start.elapsed();
        self.iters_done = n;
    }
}

/// `--test` mode: run the payload exactly once, untimed, and report that it works.
fn run_once<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher {
        mode: BenchMode::Batch(1),
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    println!("test {name} ... ok");
}

/// Median of `sorted` (which must be sorted ascending, non-empty).
fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Computes mean/median/MAD from per-sample per-iteration times.
pub fn summarize(name: &str, sample_ns: &[f64], total_iters: u64) -> BenchStats {
    assert!(!sample_ns.is_empty(), "a benchmark needs at least 1 sample");
    let mean_ns = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
    let mut sorted = sample_ns.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median_ns = median_of_sorted(&sorted);
    let mut deviations: Vec<f64> = sorted.iter().map(|s| (s - median_ns).abs()).collect();
    deviations.sort_by(f64::total_cmp);
    let mad_ns = median_of_sorted(&deviations);
    BenchStats {
        name: name.to_string(),
        mean_ns,
        median_ns,
        mad_ns,
        samples: sample_ns.len(),
        total_iters,
    }
}

/// Calibrates an iteration batch to roughly fill `measurement_time / sample_size`,
/// then times `sample_size` batches and summarizes per-iteration statistics.
fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: &mut F,
) -> BenchStats {
    // Warm-up + calibration: run single iterations until the warm-up budget is spent.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut warm_spent = Duration::ZERO;
    while warm_start.elapsed() < warm_up_time {
        let mut b = Bencher {
            mode: BenchMode::Batch(1),
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += b.iters_done;
        warm_spent += b.elapsed;
    }
    let per_iter = if warm_iters == 0 {
        Duration::from_millis(1)
    } else {
        warm_spent / warm_iters.max(1) as u32
    };
    let budget = measurement_time / sample_size.max(1) as u32;
    let batch = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

    let mut sample_ns: Vec<f64> = Vec::with_capacity(sample_size);
    let mut total_iters: u64 = 0;
    for _ in 0..sample_size {
        let mut b = Bencher {
            mode: BenchMode::Batch(batch),
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_iters += b.iters_done;
        sample_ns.push(b.elapsed.as_nanos() as f64 / b.iters_done.max(1) as f64);
    }
    summarize(name, &sample_ns, total_iters)
}

fn print_report(r: &BenchStats, throughput: Option<&Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(
                "   {:>12.0} elem/s",
                *n as f64 * 1e9 / r.median_ns.max(f64::MIN_POSITIVE)
            )
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "   {:>12.0} B/s",
                *n as f64 * 1e9 / r.median_ns.max(f64::MIN_POSITIVE)
            )
        }
        None => String::new(),
    };
    println!(
        "bench {:<48} median {:>12.1} ns/iter (±MAD {:.1}, mean {:.1}; {} samples, {} iters){rate}",
        r.name, r.median_ns, r.mad_ns, r.mean_ns, r.samples, r.total_iters
    );
}

/// Declares a benchmark group function, mirroring the real `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups, then the baseline
/// save/compare pass (which exits non-zero on regression).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) -> &mut Criterion {
        c
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(15),
            test_mode: false,
            filter: None,
        };
        quick(&mut c);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::from_parameter("p"), |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(ran > 0);
        c.bench_function("solo", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn test_mode_runs_each_payload_exactly_once() {
        let mut c = Criterion {
            sample_size: 50,
            warm_up_time: Duration::from_secs(10),
            measurement_time: Duration::from_secs(10),
            test_mode: true,
            filter: None,
        };
        let mut solo_runs = 0u64;
        c.bench_function("solo", |b| {
            b.iter(|| {
                solo_runs += 1;
                black_box(solo_runs)
            })
        });
        assert_eq!(solo_runs, 1, "test mode must not loop or warm up");
        let mut group_runs = 0u64;
        let mut group = c.benchmark_group("g");
        group.bench_function("p", |b| {
            b.iter(|| {
                group_runs += 1;
                black_box(group_runs)
            })
        });
        group.finish();
        assert_eq!(group_runs, 1);
    }

    #[test]
    fn filter_skips_unmatched_benchmarks() {
        let mut c = Criterion {
            sample_size: 1,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(1),
            test_mode: true,
            filter: Some("keep".to_string()),
        };
        let mut kept = 0u64;
        let mut skipped = 0u64;
        c.bench_function("keep_this", |b| b.iter(|| kept += 1));
        c.bench_function("drop_this", |b| b.iter(|| skipped += 1));
        let mut group = c.benchmark_group("g");
        group.bench_function("keep_too", |b| b.iter(|| kept += 1));
        group.bench_function("other", |b| b.iter(|| skipped += 1));
        group.finish();
        assert_eq!(kept, 2);
        assert_eq!(skipped, 0, "filtered-out benchmarks must not run");
    }

    #[test]
    fn cli_parsing_accepts_known_and_rejects_unknown() {
        let parse = |args: &[&str]| parse_cli(args.iter().map(|s| s.to_string()));
        assert_eq!(
            parse(&[]).unwrap(),
            CliOptions {
                threshold: CliOptions::DEFAULT_THRESHOLD,
                ..CliOptions::default()
            }
        );
        let opts = parse(&[
            "--bench",
            "matrix",
            "--test",
            "--save-baseline",
            "dev",
            "--baseline",
            "ci",
            "--regression-threshold",
            "2.0",
        ])
        .unwrap();
        assert!(opts.test_mode);
        assert_eq!(opts.filter.as_deref(), Some("matrix"));
        assert_eq!(opts.save_baseline.as_deref(), Some("dev"));
        assert_eq!(opts.baseline.as_deref(), Some("ci"));
        assert_eq!(opts.threshold, 2.0);

        assert!(parse(&["--frobnicate"]).is_err(), "unknown flags error");
        assert!(parse(&["--save-baseline"]).is_err(), "missing value errors");
        assert!(parse(&["--regression-threshold", "nope"]).is_err());
        assert!(parse(&["--regression-threshold", "-1"]).is_err());
        assert!(parse(&["a", "b"]).is_err(), "at most one filter");
    }

    #[test]
    fn summary_statistics_are_robust() {
        // Median/MAD must shrug off one wild outlier that wrecks the mean.
        let s = summarize("x", &[10.0, 11.0, 9.0, 10.0, 500.0], 100);
        assert_eq!(s.median_ns, 10.0);
        assert_eq!(s.mad_ns, 1.0);
        assert!(s.mean_ns > 100.0, "the mean is dominated by the outlier");
        // Even-length median interpolates.
        let s = summarize("y", &[1.0, 2.0, 3.0, 4.0], 4);
        assert_eq!(s.median_ns, 2.5);
        assert_eq!(s.mad_ns, 1.0);
    }
}
