//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds without network access, so the real crates.io `criterion`
//! cannot be fetched. This crate implements the subset of its API the workspace's
//! benches use — [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros — as a
//! simple wall-clock harness: each benchmark is warmed up, then timed over repeated
//! batches, and the mean time per iteration is printed.
//!
//! There is no statistical analysis, outlier detection, HTML report, or baseline
//! comparison; the numbers are honest wall-clock means, suitable for spotting
//! order-of-magnitude regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// `--test` mode: run every benchmark payload exactly once, untimed — a smoke
    /// test that the harness and payloads still work, mirroring real criterion.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Reads the command-line arguments, honouring `--test` (run each benchmark once,
    /// untimed) and ignoring the rest, mirroring the real API so that
    /// `criterion_group!`-generated mains keep their shape.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            test_mode: self.test_mode,
            throughput: None,
            _parent: self,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.test_mode {
            run_once(name, &mut f);
            return self;
        }
        let report = run_bench(
            name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        print_report(&report, None);
        self
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the amount of work per iteration so a rate is reported.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a function under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.test_mode {
            run_once(&name, &mut f);
            return self;
        }
        let report = run_bench(
            &name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        print_report(&report, self.throughput.as_ref());
        self
    }

    /// Benchmarks a function over one input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Work-per-iteration declarations for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many abstract elements (e.g. instructions).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier (the `name/parameter` suffix inside a group).
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An identifier made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An identifier made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into the displayed benchmark name (accepts `&str` and [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The displayed identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the payload.
pub struct Bencher {
    mode: BenchMode,
    iters_done: u64,
    elapsed: Duration,
}

enum BenchMode {
    /// Run the payload a fixed number of times, timing the whole batch.
    Batch(u64),
}

impl Bencher {
    /// Runs `payload` for this sample's iteration budget, recording elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        let BenchMode::Batch(n) = self.mode;
        let start = Instant::now();
        for _ in 0..n {
            black_box(payload());
        }
        self.elapsed = start.elapsed();
        self.iters_done = n;
    }
}

struct Report {
    name: String,
    mean_ns: f64,
    samples: usize,
    total_iters: u64,
}

/// `--test` mode: run the payload exactly once, untimed, and report that it works.
fn run_once<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher {
        mode: BenchMode::Batch(1),
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    println!("test {name} ... ok");
}

/// Calibrates an iteration batch to roughly fill `measurement_time / sample_size`,
/// then times `sample_size` batches and averages.
fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: &mut F,
) -> Report {
    // Warm-up + calibration: run single iterations until the warm-up budget is spent.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut warm_spent = Duration::ZERO;
    while warm_start.elapsed() < warm_up_time {
        let mut b = Bencher {
            mode: BenchMode::Batch(1),
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += b.iters_done;
        warm_spent += b.elapsed;
    }
    let per_iter = if warm_iters == 0 {
        Duration::from_millis(1)
    } else {
        warm_spent / warm_iters.max(1) as u32
    };
    let budget = measurement_time / sample_size.max(1) as u32;
    let batch = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    for _ in 0..sample_size {
        let mut b = Bencher {
            mode: BenchMode::Batch(batch),
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters_done;
    }
    Report {
        name: name.to_string(),
        mean_ns: total.as_nanos() as f64 / total_iters.max(1) as f64,
        samples: sample_size,
        total_iters,
    }
}

fn print_report(r: &Report, throughput: Option<&Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(
                "   {:>12.0} elem/s",
                *n as f64 * 1e9 / r.mean_ns.max(f64::MIN_POSITIVE)
            )
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "   {:>12.0} B/s",
                *n as f64 * 1e9 / r.mean_ns.max(f64::MIN_POSITIVE)
            )
        }
        None => String::new(),
    };
    println!(
        "bench {:<48} {:>14.1} ns/iter ({} samples, {} iters){rate}",
        r.name, r.mean_ns, r.samples, r.total_iters
    );
}

/// Declares a benchmark group function, mirroring the real `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) -> &mut Criterion {
        c
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(15),
            test_mode: false,
        };
        quick(&mut c);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::from_parameter("p"), |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(ran > 0);
        c.bench_function("solo", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn test_mode_runs_each_payload_exactly_once() {
        let mut c = Criterion {
            sample_size: 50,
            warm_up_time: Duration::from_secs(10),
            measurement_time: Duration::from_secs(10),
            test_mode: true,
        };
        let mut solo_runs = 0u64;
        c.bench_function("solo", |b| {
            b.iter(|| {
                solo_runs += 1;
                black_box(solo_runs)
            })
        });
        assert_eq!(solo_runs, 1, "test mode must not loop or warm up");
        let mut group_runs = 0u64;
        let mut group = c.benchmark_group("g");
        group.bench_function("p", |b| {
            b.iter(|| {
                group_runs += 1;
                black_box(group_runs)
            })
        });
        group.finish();
        assert_eq!(group_runs, 1);
    }
}
