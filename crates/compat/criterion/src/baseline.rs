//! Baseline files: saving benchmark statistics as JSON and comparing a fresh run
//! against a saved (possibly committed) baseline.
//!
//! The file format is a small fixed-shape JSON document:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "benches": {
//!     "group/bench": {
//!       "mean_ns": 123.4, "median_ns": 120.0, "mad_ns": 2.5,
//!       "samples": 20, "total_iters": 12345
//!     }
//!   }
//! }
//! ```
//!
//! The parser below handles exactly this subset of JSON (objects, strings,
//! numbers) with no external dependencies; unknown keys inside a bench entry are
//! ignored so the format can grow.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::str::Chars;

use crate::BenchStats;

/// Per-benchmark baseline numbers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BaselineEntry {
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Median time per iteration in nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation in nanoseconds.
    pub mad_ns: f64,
    /// Timed samples that produced these numbers.
    pub samples: u64,
    /// Total iterations across all samples.
    pub total_iters: u64,
}

/// A parsed baseline file: benchmark name → saved statistics. Ordered so that
/// saving is deterministic (stable diffs for committed baselines).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BaselineFile {
    /// Saved statistics by benchmark name.
    pub benches: BTreeMap<String, BaselineEntry>,
}

impl BaselineFile {
    /// Builds a baseline from this run's results.
    pub fn from_results(results: &[BenchStats]) -> Self {
        let mut benches = BTreeMap::new();
        for r in results {
            benches.insert(
                r.name.clone(),
                BaselineEntry {
                    mean_ns: r.mean_ns,
                    median_ns: r.median_ns,
                    mad_ns: r.mad_ns,
                    samples: r.samples as u64,
                    total_iters: r.total_iters,
                },
            );
        }
        BaselineFile { benches }
    }

    /// Overlays `newer`'s entries onto this baseline (entries for benchmarks that
    /// did not run — e.g. because the run was name-filtered — are kept unchanged).
    pub fn merge(&mut self, newer: &BaselineFile) {
        for (name, entry) in &newer.benches {
            self.benches.insert(name.clone(), entry.clone());
        }
    }

    /// Serializes to the JSON document described in the module docs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"benches\": {\n");
        for (i, (name, e)) in self.benches.iter().enumerate() {
            let _ = write!(
                out,
                "    {}: {{\"mean_ns\": {}, \"median_ns\": {}, \"mad_ns\": {}, \
                 \"samples\": {}, \"total_iters\": {}}}",
                escape(name),
                fmt_f64(e.mean_ns),
                fmt_f64(e.median_ns),
                fmt_f64(e.mad_ns),
                e.samples,
                e.total_iters
            );
            out.push_str(if i + 1 < self.benches.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the JSON document described in the module docs.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let mut p = Parser {
            chars: s.chars(),
            peeked: None,
        };
        let top = p.value()?;
        p.skip_ws();
        if p.next_char().is_some() {
            return Err("trailing characters after the top-level object".into());
        }
        let Value::Object(top) = top else {
            return Err("baseline file must be a JSON object".into());
        };
        let benches_val = top
            .into_iter()
            .find(|(k, _)| k == "benches")
            .map(|(_, v)| v)
            .ok_or("baseline file has no \"benches\" key")?;
        let Value::Object(entries) = benches_val else {
            return Err("\"benches\" must be an object".into());
        };
        let mut benches = BTreeMap::new();
        for (name, v) in entries {
            let Value::Object(fields) = v else {
                return Err(format!("bench {name:?} must be an object"));
            };
            let mut e = BaselineEntry::default();
            for (k, fv) in fields {
                let Value::Num(n) = fv else {
                    return Err(format!("bench {name:?} field {k:?} must be a number"));
                };
                match k.as_str() {
                    "mean_ns" => e.mean_ns = n,
                    "median_ns" => e.median_ns = n,
                    "mad_ns" => e.mad_ns = n,
                    "samples" => e.samples = n as u64,
                    "total_iters" => e.total_iters = n as u64,
                    _ => {} // forward-compatible: ignore unknown fields
                }
            }
            benches.insert(name, e);
        }
        Ok(BaselineFile { benches })
    }

    /// Loads a baseline from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let raw = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Self::from_json(&raw)
    }

    /// Saves the baseline to `path`, creating parent directories as needed.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        std::fs::write(path, self.to_json()).map_err(|e| e.to_string())
    }
}

/// Compares this run's results against a baseline. Returns a human-readable report
/// and the number of regressions (benchmarks whose median exceeded
/// `baseline_median × threshold`). Benchmarks absent from the baseline are noted
/// but never fail the run; baseline entries that did not run are ignored (the run
/// may be filtered).
pub fn compare(results: &[BenchStats], base: &BaselineFile, threshold: f64) -> (String, usize) {
    let mut out = String::new();
    let mut regressions = 0usize;
    let _ = writeln!(
        out,
        "baseline comparison (regression = median ratio > {threshold:.2}):"
    );
    for r in results {
        match base.benches.get(&r.name) {
            Some(b) if b.median_ns > 0.0 => {
                let ratio = r.median_ns / b.median_ns;
                let verdict = if ratio > threshold {
                    regressions += 1;
                    "REGRESSION"
                } else if ratio < 1.0 / threshold {
                    "improved"
                } else {
                    "ok"
                };
                let _ = writeln!(
                    out,
                    "  {:<48} {:>12.1} ns vs {:>12.1} ns  x{ratio:<6.3} {verdict}",
                    r.name, r.median_ns, b.median_ns
                );
            }
            Some(_) => {
                let _ = writeln!(out, "  {:<48} baseline median is zero; skipped", r.name);
            }
            None => {
                let _ = writeln!(out, "  {:<48} not in baseline; skipped", r.name);
            }
        }
    }
    (out, regressions)
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON value in the subset the baseline format uses.
enum Value {
    Object(Vec<(String, Value)>),
    Num(f64),
    Str(#[allow(dead_code)] String),
}

struct Parser<'a> {
    chars: Chars<'a>,
    peeked: Option<char>,
}

impl Parser<'_> {
    fn next_char(&mut self) -> Option<char> {
        self.peeked.take().or_else(|| self.chars.next())
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.next_char();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.next_char() {
            Some(got) if got == c => Ok(()),
            got => Err(format!("expected {c:?}, got {got:?}")),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            got => Err(format!("unexpected character {got:?}")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.next_char();
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.next_char() {
                Some(',') => continue,
                Some('}') => break,
                got => return Err(format!("expected ',' or '}}', got {got:?}")),
            }
        }
        Ok(Value::Object(fields))
    }

    fn string(&mut self) -> Result<String, String> {
        match self.next_char() {
            Some('"') => {}
            got => return Err(format!("expected string, got {got:?}")),
        }
        let mut out = String::new();
        loop {
            match self.next_char() {
                Some('"') => return Ok(out),
                Some('\\') => match self.next_char() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('u') => {
                        let hex: String = (0..4).filter_map(|_| self.next_char()).collect();
                        let code = u32::from_str_radix(&hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    got => return Err(format!("bad escape {got:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let mut raw = String::new();
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
        ) {
            raw.push(self.next_char().expect("peeked"));
        }
        raw.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number {raw:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(name: &str, median: f64) -> BenchStats {
        BenchStats {
            name: name.to_string(),
            mean_ns: median * 1.1,
            median_ns: median,
            mad_ns: median * 0.02,
            samples: 10,
            total_iters: 1000,
        }
    }

    #[test]
    fn baseline_json_round_trips() {
        let results = vec![stats("g/a", 120.0), stats("g/b \"q\"", 4.5e6)];
        let file = BaselineFile::from_results(&results);
        let json = file.to_json();
        let parsed = BaselineFile::from_json(&json).expect("parses");
        assert_eq!(parsed, file);
        assert_eq!(parsed.benches["g/a"].median_ns, 120.0);
        assert_eq!(parsed.benches["g/b \"q\""].samples, 10);
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(BaselineFile::from_json("").is_err());
        assert!(BaselineFile::from_json("{}").is_err(), "missing benches");
        assert!(BaselineFile::from_json("{\"benches\": 3}").is_err());
        assert!(BaselineFile::from_json("{\"benches\": {}} junk").is_err());
        assert!(BaselineFile::from_json("{\"benches\": {\"a\": {\"median_ns\": []}}}").is_err());
    }

    /// Satellite acceptance: an injected slowdown must be flagged (→ non-zero exit
    /// in `finalize`), an unchanged run must pass, and an improvement must not fail.
    #[test]
    fn compare_flags_regressions_and_passes_unchanged_runs() {
        let base = BaselineFile::from_results(&[stats("g/a", 100.0), stats("g/b", 100.0)]);

        // Unchanged run (within threshold): zero regressions.
        let (report, bad) = compare(&[stats("g/a", 104.0)], &base, 1.5);
        assert_eq!(bad, 0, "{report}");
        assert!(report.contains("ok"));

        // Injected 3x slowdown: flagged.
        let (report, bad) = compare(&[stats("g/a", 300.0)], &base, 1.5);
        assert_eq!(bad, 1);
        assert!(report.contains("REGRESSION"));

        // Improvement: reported, never a failure.
        let (report, bad) = compare(&[stats("g/b", 40.0)], &base, 1.5);
        assert_eq!(bad, 0);
        assert!(report.contains("improved"));

        // A bench the baseline does not know: noted, not a failure.
        let (report, bad) = compare(&[stats("g/new", 40.0)], &base, 1.5);
        assert_eq!(bad, 0);
        assert!(report.contains("not in baseline"));
    }

    /// A filtered `--save-baseline` run must not clobber entries for benchmarks it
    /// did not run.
    #[test]
    fn merge_preserves_benches_absent_from_the_newer_run() {
        let mut file = BaselineFile::from_results(&[stats("g/a", 100.0), stats("g/b", 200.0)]);
        file.merge(&BaselineFile::from_results(&[stats("g/a", 50.0)]));
        assert_eq!(file.benches["g/a"].median_ns, 50.0, "ran: refreshed");
        assert_eq!(file.benches["g/b"].median_ns, 200.0, "did not run: kept");
    }

    #[test]
    fn save_and_load_round_trip_via_disk() {
        let dir = std::env::temp_dir().join(format!("svw-baseline-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("ci.json");
        let file = BaselineFile::from_results(&[stats("m/x", 9.0)]);
        file.save(&path).expect("saves with parent dirs");
        let loaded = BaselineFile::load(&path).expect("loads");
        assert_eq!(loaded, file);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
