//! The FSQ steering predictor of the speculative-SQ design.
//!
//! "FSQ steering uses a simple predictor, a single bit per instruction in the
//! instruction cache. Initially, all bits are clear and no loads/stores access/enter
//! the FSQ. When re-execution detects a missed forwarding instance, the participating
//! load and store are tagged for future FSQ access/entry."

use std::collections::HashSet;
use std::hash::BuildHasherDefault;

use svw_isa::{IntKeyHasher, Pc};

/// A per-static-instruction steering bit, modelled as a set of tagged PCs (the paper
/// stores the bit in the instruction cache, so capacity is effectively the I-cache's
/// reach; we model it as unbounded, which is equivalent for our footprint). The set
/// is consulted once per dispatched load/store under SSQ, so it uses the fast
/// deterministic integer hasher.
#[derive(Clone, Debug, Default)]
pub struct SteeringPredictor {
    tagged: HashSet<Pc, BuildHasherDefault<IntKeyHasher>>,
    marks: u64,
}

impl SteeringPredictor {
    /// Creates a predictor with all bits clear.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restores the all-bits-clear state, retaining the tag set's capacity.
    pub fn reset(&mut self) {
        self.tagged.clear();
        self.marks = 0;
    }

    /// Returns `true` if the static instruction at `pc` should use the FSQ
    /// (loads: search it; stores: allocate an entry in it).
    pub fn uses_fsq(&self, pc: Pc) -> bool {
        self.tagged.contains(&pc)
    }

    /// Tags the instruction at `pc` for FSQ use (training on a missed forwarding
    /// instance detected by re-execution).
    pub fn mark(&mut self, pc: Pc) {
        if self.tagged.insert(pc) {
            self.marks += 1;
        }
    }

    /// Number of distinct static instructions tagged so far.
    pub fn tagged_count(&self) -> usize {
        self.tagged.len()
    }

    /// Number of (distinct) training events.
    pub fn marks(&self) -> u64 {
        self.marks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initially_nothing_uses_the_fsq() {
        let p = SteeringPredictor::new();
        assert!(!p.uses_fsq(0x1234));
        assert_eq!(p.tagged_count(), 0);
    }

    #[test]
    fn marking_is_sticky_and_idempotent() {
        let mut p = SteeringPredictor::new();
        p.mark(0x1000);
        p.mark(0x1000);
        p.mark(0x2000);
        assert!(p.uses_fsq(0x1000));
        assert!(p.uses_fsq(0x2000));
        assert!(!p.uses_fsq(0x3000));
        assert_eq!(p.tagged_count(), 2);
        assert_eq!(p.marks(), 2);
    }
}
