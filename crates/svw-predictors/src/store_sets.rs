//! Store-sets memory dependence prediction (Chrysos & Emer), used by both of the
//! paper's machine configurations to manage load speculation.
//!
//! The implementation follows the classic SSIT/LFST organisation:
//!
//! * the **store set ID table (SSIT)** maps instruction PCs (loads and stores) to store
//!   set identifiers; it is trained when a memory-ordering violation is detected
//!   (in the NLQ design the violating store PC comes from the SPCT);
//! * the **last fetched store table (LFST)** maps a store set ID to the most recently
//!   renamed, still in-flight store belonging to that set.
//!
//! A load that maps to a store set with an in-flight store must wait for that store to
//! execute before issuing; all other loads may issue speculatively past older stores
//! with unresolved addresses (and are exactly the loads NLQ_LS marks for re-execution).

use svw_isa::{InstSeq, Pc};

/// A store set identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StoreSetId(u32);

/// Configuration of the store-sets predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreSetsConfig {
    /// SSIT entries (indexed by PC).
    pub ssit_entries: usize,
    /// Maximum number of distinct store sets (LFST entries).
    pub lfst_entries: usize,
    /// Clear the SSIT every this many training events to avoid permanent
    /// over-serialization (the standard "periodic clearing" of store-sets).
    pub clear_interval: u64,
}

impl StoreSetsConfig {
    /// A 4K-entry SSIT / 256-set LFST configuration comparable to the literature.
    pub fn paper_default() -> Self {
        StoreSetsConfig {
            ssit_entries: 4096,
            lfst_entries: 256,
            clear_interval: 100_000,
        }
    }
}

impl Default for StoreSetsConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The store-sets predictor.
#[derive(Clone, Debug)]
pub struct StoreSets {
    config: StoreSetsConfig,
    /// SSIT: PC-indexed store set IDs (`None` = not in any set).
    ssit: Vec<Option<StoreSetId>>,
    /// LFST: per-set sequence number of the youngest in-flight store, if any.
    lfst: Vec<Option<InstSeq>>,
    trainings: u64,
    next_set: u32,
}

impl StoreSets {
    /// Creates an empty predictor (no load depends on any store).
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two.
    pub fn new(config: StoreSetsConfig) -> Self {
        let mut ss = StoreSets {
            config,
            ssit: Vec::new(),
            lfst: Vec::new(),
            trainings: 0,
            next_set: 0,
        };
        ss.reset(config);
        ss
    }

    /// Restores the untrained state for `config` — observationally identical to
    /// [`StoreSets::new`] — reusing the SSIT/LFST storage where sizes allow.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two.
    pub fn reset(&mut self, config: StoreSetsConfig) {
        assert!(
            config.ssit_entries.is_power_of_two(),
            "SSIT size must be a power of two"
        );
        assert!(
            config.lfst_entries.is_power_of_two(),
            "LFST size must be a power of two"
        );
        self.ssit.clear();
        self.ssit.resize(config.ssit_entries, None);
        self.lfst.clear();
        self.lfst.resize(config.lfst_entries, None);
        self.trainings = 0;
        self.next_set = 0;
        self.config = config;
    }

    /// Number of violations trained on so far.
    pub fn trainings(&self) -> u64 {
        self.trainings
    }

    #[inline]
    fn ssit_index(&self, pc: Pc) -> usize {
        ((pc >> 2) as usize) & (self.config.ssit_entries - 1)
    }

    #[inline]
    fn lfst_index(&self, id: StoreSetId) -> usize {
        (id.0 as usize) & (self.config.lfst_entries - 1)
    }

    /// Called when a store is renamed: if the store belongs to a set, it becomes that
    /// set's last fetched store. Returns the sequence number of the *previous* last
    /// fetched store of the set (a store-store ordering dependence), if any.
    pub fn store_renamed(&mut self, pc: Pc, seq: InstSeq) -> Option<InstSeq> {
        let id = self.ssit[self.ssit_index(pc)]?;
        let slot = self.lfst_index(id);
        self.lfst[slot].replace(seq)
    }

    /// Called when a load is renamed: returns the sequence number of the in-flight
    /// store the load should wait for, if its PC maps to a store set with an in-flight
    /// store.
    pub fn load_dependence(&self, pc: Pc) -> Option<InstSeq> {
        let id = self.ssit[self.ssit_index(pc)]?;
        self.lfst[self.lfst_index(id)]
    }

    /// Called when the store with sequence number `seq` (and PC `pc`) executes or
    /// retires: it is no longer the last fetched store of its set.
    pub fn store_resolved(&mut self, pc: Pc, seq: InstSeq) {
        if let Some(id) = self.ssit[self.ssit_index(pc)] {
            let slot = self.lfst_index(id);
            if self.lfst[slot] == Some(seq) {
                self.lfst[slot] = None;
            }
        }
    }

    /// Clears all in-flight state (after a pipeline flush). SSIT training survives.
    pub fn flush_inflight(&mut self) {
        self.lfst.iter_mut().for_each(|e| *e = None);
    }

    /// Trains the predictor on a detected memory-ordering violation between the load
    /// at `load_pc` and the store at `store_pc` (store-load pair training; with the
    /// SPCT this is what the NLQ design enables).
    pub fn train_violation(&mut self, load_pc: Pc, store_pc: Pc) {
        self.trainings += 1;
        if self.config.clear_interval > 0
            && self.trainings.is_multiple_of(self.config.clear_interval)
        {
            self.ssit.iter_mut().for_each(|e| *e = None);
            self.lfst.iter_mut().for_each(|e| *e = None);
        }
        let li = self.ssit_index(load_pc);
        let si = self.ssit_index(store_pc);
        match (self.ssit[li], self.ssit[si]) {
            (Some(a), Some(b)) => {
                // Merge: both adopt the smaller ID (the classic store-sets merge rule).
                let winner = StoreSetId(a.0.min(b.0));
                self.ssit[li] = Some(winner);
                self.ssit[si] = Some(winner);
            }
            (Some(a), None) => self.ssit[si] = Some(a),
            (None, Some(b)) => self.ssit[li] = Some(b),
            (None, None) => {
                let id = StoreSetId(self.next_set);
                self.next_set = self.next_set.wrapping_add(1);
                self.ssit[li] = Some(id);
                self.ssit[si] = Some(id);
            }
        }
    }

    /// Trains the predictor store-blindly (the load is forced to wait for *all* older
    /// stores by assigning it a private, always-conflicting set). Used when the
    /// violating store's identity is unknown (an NLQ without the SPCT).
    pub fn train_violation_blind(&mut self, load_pc: Pc) {
        // Without knowing the store, conservatively put the load in a set by itself;
        // the simulator treats a load whose set has no in-flight store as free to
        // issue, so blind training is modelled as pairing the load with every store PC
        // that aliases into the same SSIT entry over time. We approximate by assigning
        // a fresh set that subsequent violations can merge into.
        self.trainings += 1;
        let li = self.ssit_index(load_pc);
        if self.ssit[li].is_none() {
            let id = StoreSetId(self.next_set);
            self.next_set = self.next_set.wrapping_add(1);
            self.ssit[li] = Some(id);
        }
    }

    /// Returns `true` if the load at `load_pc` belongs to any store set (i.e. it has
    /// been involved in a violation before).
    pub fn load_has_set(&self, pc: Pc) -> bool {
        self.ssit[self.ssit_index(pc)].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_loads_are_independent() {
        let ss = StoreSets::new(StoreSetsConfig::paper_default());
        assert_eq!(ss.load_dependence(0x1000), None);
        assert!(!ss.load_has_set(0x1000));
    }

    #[test]
    fn violation_training_creates_dependence() {
        let mut ss = StoreSets::new(StoreSetsConfig::paper_default());
        let load_pc = 0x1000;
        let store_pc = 0x2000;
        ss.train_violation(load_pc, store_pc);
        assert!(ss.load_has_set(load_pc));
        // The store renames; the load should now wait for it.
        assert_eq!(ss.store_renamed(store_pc, 55), None);
        assert_eq!(ss.load_dependence(load_pc), Some(55));
        // Once the store resolves, the load is free.
        ss.store_resolved(store_pc, 55);
        assert_eq!(ss.load_dependence(load_pc), None);
    }

    #[test]
    fn younger_store_of_same_set_supersedes() {
        let mut ss = StoreSets::new(StoreSetsConfig::paper_default());
        ss.train_violation(0x1000, 0x2000);
        assert_eq!(ss.store_renamed(0x2000, 10), None);
        assert_eq!(ss.store_renamed(0x2000, 20), Some(10));
        assert_eq!(ss.load_dependence(0x1000), Some(20));
        // Resolving the *older* instance does not clear the dependence on the younger.
        ss.store_resolved(0x2000, 10);
        assert_eq!(ss.load_dependence(0x1000), Some(20));
    }

    #[test]
    fn sets_merge_on_shared_violations() {
        let mut ss = StoreSets::new(StoreSetsConfig::paper_default());
        ss.train_violation(0x1000, 0x2000);
        ss.train_violation(0x1100, 0x2100);
        // A violation connecting the two sets merges them.
        ss.train_violation(0x1000, 0x2100);
        ss.store_renamed(0x2000, 7);
        // After the merge both loads key off the same LFST slot family: training the
        // cross pair makes load 0x1000 depend on stores from either PC.
        assert!(ss.load_has_set(0x1000));
        assert!(ss.load_has_set(0x1100));
    }

    #[test]
    fn flush_clears_inflight_but_not_training() {
        let mut ss = StoreSets::new(StoreSetsConfig::paper_default());
        ss.train_violation(0x1000, 0x2000);
        ss.store_renamed(0x2000, 99);
        ss.flush_inflight();
        assert_eq!(ss.load_dependence(0x1000), None);
        assert!(ss.load_has_set(0x1000)); // training persists
    }

    #[test]
    fn blind_training_marks_load() {
        let mut ss = StoreSets::new(StoreSetsConfig::paper_default());
        ss.train_violation_blind(0x3000);
        assert!(ss.load_has_set(0x3000));
        assert_eq!(ss.trainings(), 1);
    }

    #[test]
    fn reset_matches_new() {
        let cfg = StoreSetsConfig::paper_default();
        let mut ss = StoreSets::new(cfg);
        ss.train_violation(0x1000, 0x2000);
        ss.store_renamed(0x2000, 9);
        ss.reset(cfg);
        assert_eq!(format!("{ss:?}"), format!("{:?}", StoreSets::new(cfg)));
    }

    #[test]
    fn periodic_clearing_forgets_training() {
        let mut ss = StoreSets::new(StoreSetsConfig {
            clear_interval: 4,
            ..StoreSetsConfig::paper_default()
        });
        ss.train_violation(0x1000, 0x2000);
        for i in 0..4 {
            ss.train_violation(0x5000 + i * 8, 0x6000 + i * 8);
        }
        // The clearing interval has passed; the original pair may have been wiped.
        // (We only check that the structure remains usable and counts trainings.)
        assert_eq!(ss.trainings(), 5);
    }
}
