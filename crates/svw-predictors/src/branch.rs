//! Branch direction prediction (hybrid bimodal/gshare with a chooser) and a BTB.

use svw_isa::Pc;

/// Geometry of the direction predictor and BTB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchPredictorConfig {
    /// Entries in each direction-predictor table (bimodal, gshare, chooser).
    pub direction_entries: usize,
    /// Global-history length in bits for the gshare component.
    pub history_bits: u32,
    /// BTB entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_assoc: usize,
}

impl BranchPredictorConfig {
    /// The paper's front end: an "8K-entry hybrid direction predictor and a 2K entry,
    /// 2-way set-associative BTB".
    pub fn paper_default() -> Self {
        BranchPredictorConfig {
            direction_entries: 8 * 1024,
            history_bits: 12,
            btb_entries: 2 * 1024,
            btb_assoc: 2,
        }
    }
}

impl Default for BranchPredictorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Direction-prediction accuracy counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchPredictorStats {
    /// Conditional branches predicted.
    pub predictions: u64,
    /// Conditional branches mispredicted.
    pub mispredictions: u64,
}

impl BranchPredictorStats {
    /// Misprediction rate over all predicted conditional branches.
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[inline]
fn counter_update(counter: &mut u8, taken: bool) {
    if taken {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

#[inline]
fn counter_taken(counter: u8) -> bool {
    counter >= 2
}

/// A hybrid (tournament) direction predictor: a bimodal table, a gshare table, and a
/// per-branch chooser, all of 2-bit saturating counters.
#[derive(Clone, Debug)]
pub struct HybridPredictor {
    config: BranchPredictorConfig,
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    chooser: Vec<u8>,
    history: u64,
    stats: BranchPredictorStats,
}

impl HybridPredictor {
    /// Creates a predictor with all counters weakly not-taken and the chooser unbiased.
    ///
    /// # Panics
    ///
    /// Panics if the table size is not a power of two.
    pub fn new(config: BranchPredictorConfig) -> Self {
        let mut p = HybridPredictor {
            config,
            bimodal: Vec::new(),
            gshare: Vec::new(),
            chooser: Vec::new(),
            history: 0,
            stats: BranchPredictorStats::default(),
        };
        p.reset(config);
        p
    }

    /// Restores the untrained state for `config` — observationally identical to
    /// [`HybridPredictor::new`] — reusing the counter-table storage where sizes allow.
    ///
    /// # Panics
    ///
    /// Panics if the table size is not a power of two.
    pub fn reset(&mut self, config: BranchPredictorConfig) {
        assert!(
            config.direction_entries.is_power_of_two(),
            "direction-predictor size must be a power of two"
        );
        let n = config.direction_entries;
        self.bimodal.clear();
        self.bimodal.resize(n, 1);
        self.gshare.clear();
        self.gshare.resize(n, 1);
        self.chooser.clear();
        self.chooser.resize(n, 2);
        self.history = 0;
        self.stats = BranchPredictorStats::default();
        self.config = config;
    }

    /// The configured geometry.
    pub fn config(&self) -> &BranchPredictorConfig {
        &self.config
    }

    /// Accuracy counters.
    pub fn stats(&self) -> &BranchPredictorStats {
        &self.stats
    }

    #[inline]
    fn index_bimodal(&self, pc: Pc) -> usize {
        ((pc >> 2) as usize) & (self.config.direction_entries - 1)
    }

    #[inline]
    fn index_gshare(&self, pc: Pc) -> usize {
        let hist_mask = (1u64 << self.config.history_bits) - 1;
        (((pc >> 2) ^ (self.history & hist_mask)) as usize) & (self.config.direction_entries - 1)
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: Pc) -> bool {
        let bi = counter_taken(self.bimodal[self.index_bimodal(pc)]);
        let gs = counter_taken(self.gshare[self.index_gshare(pc)]);
        let use_gshare = counter_taken(self.chooser[self.index_bimodal(pc)]);
        if use_gshare {
            gs
        } else {
            bi
        }
    }

    /// Updates the predictor with the resolved outcome of the conditional branch at
    /// `pc` and records whether the earlier prediction was correct. Returns `true` if
    /// the branch was mispredicted.
    pub fn update(&mut self, pc: Pc, taken: bool) -> bool {
        let bi_idx = self.index_bimodal(pc);
        let gs_idx = self.index_gshare(pc);
        let bi_pred = counter_taken(self.bimodal[bi_idx]);
        let gs_pred = counter_taken(self.gshare[gs_idx]);
        let use_gshare = counter_taken(self.chooser[bi_idx]);
        let pred = if use_gshare { gs_pred } else { bi_pred };

        // Train the chooser toward the component that was right (when they disagree).
        if bi_pred != gs_pred {
            counter_update(&mut self.chooser[bi_idx], gs_pred == taken);
        }
        counter_update(&mut self.bimodal[bi_idx], taken);
        counter_update(&mut self.gshare[gs_idx], taken);
        self.history = (self.history << 1) | u64::from(taken);

        self.stats.predictions += 1;
        let mispredicted = pred != taken;
        if mispredicted {
            self.stats.mispredictions += 1;
        }
        mispredicted
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    target: Pc,
    lru: u64,
}

/// A set-associative branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    sets: usize,
    assoc: usize,
    entries: Vec<BtbEntry>,
    tick: u64,
}

impl Btb {
    /// Creates an empty BTB with `entries` total entries and `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `entries / assoc` is not a power of two.
    pub fn new(entries: usize, assoc: usize) -> Self {
        let mut btb = Btb {
            sets: 0,
            assoc,
            entries: Vec::new(),
            tick: 0,
        };
        btb.reset(entries, assoc);
        btb
    }

    /// Restores the empty state for the given geometry — observationally identical to
    /// [`Btb::new`] — reusing the entry storage where sizes allow.
    ///
    /// # Panics
    ///
    /// Panics if `entries / assoc` is not a power of two.
    pub fn reset(&mut self, entries: usize, assoc: usize) {
        let sets = entries / assoc;
        assert!(
            sets.is_power_of_two(),
            "BTB set count must be a power of two"
        );
        self.sets = sets;
        self.assoc = assoc;
        self.entries.clear();
        self.entries.resize(entries, BtbEntry::default());
        self.tick = 0;
    }

    #[inline]
    fn set_of(&self, pc: Pc) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, pc: Pc) -> u64 {
        (pc >> 2) / self.sets as u64
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&self, pc: Pc) -> Option<Pc> {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        self.entries[set * self.assoc..(set + 1) * self.assoc]
            .iter()
            .find(|e| e.valid && e.tag == tag)
            .map(|e| e.target)
    }

    /// Installs or refreshes the target of the branch at `pc`.
    pub fn update(&mut self, pc: Pc, target: Pc) {
        self.tick += 1;
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let ways = &mut self.entries[set * self.assoc..(set + 1) * self.assoc];
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.tag == tag) {
            e.target = target;
            e.lru = self.tick;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("BTB set has at least one way");
        *victim = BtbEntry {
            valid: true,
            tag,
            target,
            lru: self.tick,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_branch_is_learned() {
        let mut p = HybridPredictor::new(BranchPredictorConfig::paper_default());
        let pc = 0x40_0010;
        for _ in 0..8 {
            p.update(pc, true);
        }
        assert!(p.predict(pc));
        assert!(p.stats().misprediction_rate() < 0.5);
    }

    #[test]
    fn alternating_branch_is_learned_by_gshare() {
        let mut p = HybridPredictor::new(BranchPredictorConfig::paper_default());
        let pc = 0x40_0020;
        let mut recent_wrong = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let wrong = p.update(pc, taken);
            if i >= 150 && wrong {
                recent_wrong += 1;
            }
        }
        assert!(
            recent_wrong <= 2,
            "gshare should capture an alternating pattern, got {recent_wrong} late mispredictions"
        );
    }

    #[test]
    fn biased_branch_reaches_high_accuracy() {
        let mut p = HybridPredictor::new(BranchPredictorConfig::paper_default());
        let pc = 0x40_0030;
        for i in 0..1000 {
            // 90% taken
            p.update(pc, i % 10 != 0);
        }
        assert!(p.stats().misprediction_rate() < 0.25);
    }

    #[test]
    fn stats_start_empty() {
        let p = HybridPredictor::new(BranchPredictorConfig::paper_default());
        assert_eq!(p.stats().predictions, 0);
        assert_eq!(p.stats().misprediction_rate(), 0.0);
    }

    #[test]
    fn reset_matches_new() {
        let cfg = BranchPredictorConfig::paper_default();
        let mut p = HybridPredictor::new(cfg);
        for i in 0..500 {
            p.update(0x40_0000 + i * 4, i % 3 != 0);
        }
        p.reset(cfg);
        assert_eq!(format!("{p:?}"), format!("{:?}", HybridPredictor::new(cfg)));

        let mut btb = Btb::new(2048, 2);
        for i in 0..500 {
            btb.update(i * 4, i);
        }
        btb.reset(2048, 2);
        assert_eq!(format!("{btb:?}"), format!("{:?}", Btb::new(2048, 2)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_panics() {
        let _ = HybridPredictor::new(BranchPredictorConfig {
            direction_entries: 1000,
            ..BranchPredictorConfig::paper_default()
        });
    }

    #[test]
    fn btb_learns_targets_and_replaces_lru() {
        let mut btb = Btb::new(4, 2); // 2 sets x 2 ways
        assert_eq!(btb.lookup(0x100), None);
        btb.update(0x100, 0x500);
        assert_eq!(btb.lookup(0x100), Some(0x500));
        // Fill the same set with two more conflicting branches (same set index).
        btb.update(0x108, 0x600);
        btb.update(0x100, 0x500); // refresh
        btb.update(0x110, 0x700); // evicts 0x108
        assert_eq!(btb.lookup(0x100), Some(0x500));
        assert_eq!(btb.lookup(0x108), None);
        assert_eq!(btb.lookup(0x110), Some(0x700));
    }

    #[test]
    fn btb_update_overwrites_target() {
        let mut btb = Btb::new(2048, 2);
        btb.update(0x200, 0x300);
        btb.update(0x200, 0x400);
        assert_eq!(btb.lookup(0x200), Some(0x400));
    }
}
