//! The store PC table (SPCT).
//!
//! A "small, tagless table indexed by low-order address bits in which each entry
//! contains the PC of the last retired store to write to a matching address. On a
//! flush, the store PC is retrieved from the SPCT using the load address" — this is
//! what lets the non-associative LQ train store-load *pair* predictors (store-sets)
//! instead of store-blind ones.

use svw_isa::{Addr, Pc};

/// The store PC table.
#[derive(Clone, Debug)]
pub struct Spct {
    granularity: u64,
    entries: Vec<Option<Pc>>,
}

impl Spct {
    /// The paper-scale default: 512 entries at 8-byte granularity (same shape as the
    /// SSBF).
    pub fn paper_default() -> Self {
        Self::new(512, 8)
    }

    /// Creates a table with `entries` entries tracking addresses at `granularity`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `granularity` is zero.
    pub fn new(entries: usize, granularity: u64) -> Self {
        assert!(
            entries.is_power_of_two(),
            "SPCT size must be a power of two"
        );
        assert!(granularity > 0, "SPCT granularity must be non-zero");
        Spct {
            granularity,
            entries: vec![None; entries],
        }
    }

    /// Restores the empty state (no store PCs recorded), keeping the table geometry
    /// and storage.
    pub fn reset(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
    }

    #[inline]
    fn index(&self, addr: Addr) -> usize {
        ((addr / self.granularity) as usize) & (self.entries.len() - 1)
    }

    /// Records that the store at `pc` retired a write to `addr`.
    pub fn record_store(&mut self, addr: Addr, pc: Pc) {
        let i = self.index(addr);
        self.entries[i] = Some(pc);
    }

    /// Returns the PC of the last retired store that wrote a (possibly aliasing)
    /// address matching `addr`, if any.
    pub fn lookup(&self, addr: Addr) -> Option<Pc> {
        self.entries[self.index(addr)]
    }
}

impl Default for Spct {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_retrieves_last_store_pc() {
        let mut spct = Spct::paper_default();
        assert_eq!(spct.lookup(0x1000), None);
        spct.record_store(0x1000, 0x40_0100);
        spct.record_store(0x1000, 0x40_0200);
        assert_eq!(spct.lookup(0x1000), Some(0x40_0200));
        // Same 8-byte granule.
        assert_eq!(spct.lookup(0x1004), Some(0x40_0200));
    }

    #[test]
    fn tagless_aliasing_returns_some_pc() {
        let mut spct = Spct::new(4, 8);
        spct.record_store(0x0, 0x111);
        // 0x20 aliases with 0x0 in a 4-entry table.
        assert_eq!(spct.lookup(0x20), Some(0x111));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_panics() {
        let _ = Spct::new(100, 8);
    }
}
