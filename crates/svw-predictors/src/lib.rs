//! # svw-predictors — prediction substrates
//!
//! The SVW paper's machine uses several predictors that the reproduction must model
//! because they shape the load/store behaviour the SVW filter sees:
//!
//! * an 8K-entry **hybrid branch direction predictor** ([`HybridPredictor`]) with a
//!   2K-entry 2-way **BTB** ([`Btb`]) — branch mispredictions bound the effective
//!   window size and therefore the number of in-flight stores a load can be vulnerable
//!   to;
//! * **store-sets** ([`StoreSets`]) — the memory dependence predictor both machine
//!   configurations use to decide which loads may issue past older stores with
//!   unresolved addresses (NLQ_LS marks exactly those loads for re-execution);
//! * the **FSQ steering predictor** ([`SteeringPredictor`]) — one bit per static
//!   instruction that routes forwarding-prone loads and stores to the small forwarding
//!   store queue in the speculative-SQ design;
//! * the **store PC table** ([`Spct`]) — the small tagless table the paper adds so the
//!   non-associative LQ can train store-set (store-load pair) predictors instead of
//!   store-blind ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod spct;
mod steering;
mod store_sets;

pub use branch::{BranchPredictorConfig, BranchPredictorStats, Btb, HybridPredictor};
pub use spct::Spct;
pub use steering::SteeringPredictor;
pub use store_sets::{StoreSetId, StoreSets, StoreSetsConfig};
