//! # svw-isa
//!
//! Instruction-set and architectural-state model used by the Store Vulnerability
//! Window (SVW) reproduction.
//!
//! The simulator stack is *trace driven*: a workload generator (the `svw-workloads`
//! crate) produces a stream of [`DynInst`] records — dynamic instructions whose
//! effective addresses and sequential ("oracle") values are already resolved — and the
//! out-of-order core (the `svw-cpu` crate) replays that stream under a detailed timing
//! model. This crate defines:
//!
//! * the register / address / value newtypes ([`ArchReg`], [`Addr`], [`Value`], [`Pc`]),
//! * the operation vocabulary ([`OpClass`], [`AluKind`], [`BranchKind`], [`MemWidth`]),
//! * the dynamic instruction record ([`DynInst`], [`InstKind`], [`MemAccess`]),
//! * a byte-addressable functional memory image ([`MemoryImage`]) shared by the trace
//!   generator's oracle and the simulator's committed-state model, and
//! * a sequential oracle executor ([`ArchState`]) that defines the architectural
//!   semantics every out-of-order execution must eventually agree with.
//!
//! # Example
//!
//! ```
//! use svw_isa::{ArchState, ArchReg, DynInst, InstKind, MemWidth};
//!
//! let mut st = ArchState::new();
//! // r1 = 0x1000; store r1 -> [r1 + 8]; r2 = load [r1 + 8]
//! let i0 = DynInst::new(0, 0x400000, InstKind::LoadImm { dst: ArchReg::new(1), imm: 0x1000 });
//! let i1 = DynInst::new(1, 0x400004, InstKind::Store {
//!     data: ArchReg::new(1), base: ArchReg::new(1), offset: 8, width: MemWidth::W8 });
//! let i2 = DynInst::new(2, 0x400008, InstKind::Load {
//!     dst: ArchReg::new(2), base: ArchReg::new(1), offset: 8, width: MemWidth::W8 });
//! let mut trace = vec![i0, i1, i2];
//! for inst in &mut trace {
//!     st.execute(inst);
//! }
//! assert_eq!(trace[2].mem.as_ref().unwrap().value, 0x1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inst;
mod mem_image;
mod op;
mod oracle;
mod program;
mod stream;
mod types;

pub use inst::{BranchInfo, DynInst, InstKind, MemAccess};
pub use mem_image::{IntKeyHasher, IntKeyMap, MemoryImage};
pub use op::{AluKind, BranchKind, MemWidth, OpClass};
pub use oracle::{ArchState, ExecEffect};
pub use program::{Program, ProgramStats};
pub use stream::{InstStream, ProgramStream};
pub use types::{Addr, ArchReg, InstSeq, Pc, Value, NUM_ARCH_REGS};
