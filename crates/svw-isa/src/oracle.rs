//! The sequential ("oracle") executor.
//!
//! [`ArchState`] executes dynamic instructions one at a time in program order and
//! records the architecturally correct effective address and value of every memory
//! instruction into the instruction's [`MemAccess`] record. The out-of-order timing
//! models later use those values to decide whether a speculatively executed load got
//! the right value — exactly the comparison the paper's re-execution pipeline performs
//! against the data cache.

use crate::{
    Addr, AluKind, ArchReg, DynInst, InstKind, MemAccess, MemoryImage, Pc, Value, NUM_ARCH_REGS,
};

/// What an instruction did when executed by the oracle. Primarily useful for tests and
/// for the workload generator, which inspects effects while it builds a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecEffect {
    /// Register written and the value written, if any.
    pub reg_write: Option<(ArchReg, Value)>,
    /// Memory address and value read, for loads.
    pub mem_read: Option<(Addr, Value)>,
    /// Memory address and value written, for stores.
    pub mem_write: Option<(Addr, Value)>,
    /// The next program counter.
    pub next_pc: Pc,
}

/// Sequential architectural state: the register file plus a functional memory image.
#[derive(Clone, Debug)]
pub struct ArchState {
    regs: [Value; NUM_ARCH_REGS],
    mem: MemoryImage,
    retired: u64,
}

impl Default for ArchState {
    fn default() -> Self {
        Self::new()
    }
}

impl ArchState {
    /// Creates a fresh architectural state. Registers start at deterministic,
    /// register-dependent values (so address bases are usable before initialisation)
    /// and memory holds the [`MemoryImage::background`] pattern.
    pub fn new() -> Self {
        let mut regs = [0u64; NUM_ARCH_REGS];
        for (i, r) in regs.iter_mut().enumerate().skip(1) {
            *r = (i as u64).wrapping_mul(0x0101_0000_1000) + 0x1_0000_0000;
        }
        ArchState {
            regs,
            mem: MemoryImage::new(),
            retired: 0,
        }
    }

    /// Reads an architectural register (the zero register always reads 0).
    #[inline]
    pub fn reg(&self, r: ArchReg) -> Value {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes an architectural register (writes to the zero register are dropped).
    #[inline]
    pub fn set_reg(&mut self, r: ArchReg, v: Value) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Shared read-only access to the memory image.
    pub fn memory(&self) -> &MemoryImage {
        &self.mem
    }

    /// Number of instructions executed so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Computes the effective address a load/store would access *without* executing it.
    /// Returns `None` for non-memory instructions.
    pub fn effective_address(&self, inst: &DynInst) -> Option<Addr> {
        match inst.kind {
            InstKind::Load { base, offset, .. } | InstKind::Store { base, offset, .. } => {
                Some(self.reg(base).wrapping_add_signed(offset))
            }
            _ => None,
        }
    }

    /// Executes `inst` sequentially, updating registers and memory, and resolves the
    /// instruction's [`MemAccess`] record in place (for loads and stores).
    ///
    /// Returns a description of the architectural effects.
    pub fn execute(&mut self, inst: &mut DynInst) -> ExecEffect {
        let fallthrough = inst.pc + 4;
        let mut effect = ExecEffect {
            reg_write: None,
            mem_read: None,
            mem_write: None,
            next_pc: fallthrough,
        };
        match inst.kind {
            InstKind::IntAlu {
                op,
                dst,
                src1,
                src2,
            } => {
                let v = op.apply(self.reg(src1), self.reg(src2));
                self.set_reg(dst, v);
                effect.reg_write = Some((dst, v));
            }
            InstKind::IntMul { dst, src1, src2 } => {
                let v = self.reg(src1).wrapping_mul(self.reg(src2));
                self.set_reg(dst, v);
                effect.reg_write = Some((dst, v));
            }
            InstKind::FpAlu { dst, src1, src2 } => {
                let v = AluKind::Mix.apply(self.reg(src1), self.reg(src2));
                self.set_reg(dst, v);
                effect.reg_write = Some((dst, v));
            }
            InstKind::LoadImm { dst, imm } => {
                self.set_reg(dst, imm);
                effect.reg_write = Some((dst, imm));
            }
            InstKind::Load {
                dst,
                base,
                offset,
                width,
            } => {
                let addr = self.reg(base).wrapping_add_signed(offset);
                let v = self.mem.read(addr, width);
                self.set_reg(dst, v);
                inst.mem = Some(MemAccess {
                    addr,
                    width,
                    value: v,
                    silent: false,
                });
                effect.reg_write = Some((dst, v));
                effect.mem_read = Some((addr, v));
            }
            InstKind::Store {
                data,
                base,
                offset,
                width,
            } => {
                let addr = self.reg(base).wrapping_add_signed(offset);
                let v = self.reg(data) & width.mask();
                let silent = self.mem.would_be_silent(addr, width, v);
                self.mem.write(addr, width, v);
                inst.mem = Some(MemAccess {
                    addr,
                    width,
                    value: v,
                    silent,
                });
                effect.mem_write = Some((addr, v));
            }
            InstKind::Branch { info, .. } => {
                effect.next_pc = info.next_pc();
            }
            InstKind::Nop => {}
        }
        self.retired += 1;
        effect
    }

    /// Executes a whole slice of instructions in order, resolving every memory access.
    pub fn execute_all(&mut self, trace: &mut [DynInst]) {
        for inst in trace {
            self.execute(inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchInfo, BranchKind, MemWidth};

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    fn load_imm(seq: u64, dst: u8, imm: u64) -> DynInst {
        DynInst::new(seq, seq * 4, InstKind::LoadImm { dst: r(dst), imm })
    }

    #[test]
    fn registers_start_deterministic_and_nonzero() {
        let a = ArchState::new();
        let b = ArchState::new();
        for i in 1..NUM_ARCH_REGS as u8 {
            assert_eq!(a.reg(r(i)), b.reg(r(i)));
            assert_ne!(a.reg(r(i)), 0);
        }
        assert_eq!(a.reg(ArchReg::ZERO), 0);
    }

    #[test]
    fn zero_register_writes_are_dropped() {
        let mut st = ArchState::new();
        let mut i = DynInst::new(
            0,
            0,
            InstKind::LoadImm {
                dst: ArchReg::ZERO,
                imm: 7,
            },
        );
        st.execute(&mut i);
        assert_eq!(st.reg(ArchReg::ZERO), 0);
    }

    #[test]
    fn store_then_load_forwards_through_memory() {
        let mut st = ArchState::new();
        let mut trace = vec![
            load_imm(0, 1, 0x1000),
            load_imm(1, 2, 0xABCD),
            DynInst::new(
                2,
                8,
                InstKind::Store {
                    data: r(2),
                    base: r(1),
                    offset: 0,
                    width: MemWidth::W8,
                },
            ),
            DynInst::new(
                3,
                12,
                InstKind::Load {
                    dst: r(3),
                    base: r(1),
                    offset: 0,
                    width: MemWidth::W8,
                },
            ),
        ];
        st.execute_all(&mut trace);
        assert_eq!(st.reg(r(3)), 0xABCD);
        assert_eq!(trace[3].mem.unwrap().value, 0xABCD);
        assert_eq!(trace[2].mem.unwrap().addr, 0x1000);
        assert!(!trace[2].mem.unwrap().silent);
    }

    #[test]
    fn repeated_identical_store_is_silent() {
        let mut st = ArchState::new();
        let mut trace = vec![
            load_imm(0, 1, 0x2000),
            load_imm(1, 2, 99),
            DynInst::new(
                2,
                8,
                InstKind::Store {
                    data: r(2),
                    base: r(1),
                    offset: 0,
                    width: MemWidth::W8,
                },
            ),
            DynInst::new(
                3,
                12,
                InstKind::Store {
                    data: r(2),
                    base: r(1),
                    offset: 0,
                    width: MemWidth::W8,
                },
            ),
        ];
        st.execute_all(&mut trace);
        assert!(!trace[2].mem.unwrap().silent);
        assert!(trace[3].mem.unwrap().silent);
    }

    #[test]
    fn load_value_matches_memory_background_for_untouched_address() {
        let mut st = ArchState::new();
        let mut trace = vec![
            load_imm(0, 1, 0x8000),
            DynInst::new(
                1,
                4,
                InstKind::Load {
                    dst: r(2),
                    base: r(1),
                    offset: 0,
                    width: MemWidth::W8,
                },
            ),
        ];
        st.execute_all(&mut trace);
        assert_eq!(trace[1].mem.unwrap().value, MemoryImage::background(0x8000));
    }

    #[test]
    fn branch_next_pc_follows_outcome() {
        let mut st = ArchState::new();
        let mut b = DynInst::new(
            0,
            0x100,
            InstKind::Branch {
                kind: BranchKind::Conditional,
                info: BranchInfo {
                    taken: true,
                    target: 0x200,
                    fallthrough: 0x104,
                },
                src1: r(1),
            },
        );
        let eff = st.execute(&mut b);
        assert_eq!(eff.next_pc, 0x200);
    }

    #[test]
    fn effective_address_matches_execute() {
        let mut st = ArchState::new();
        let mut setup = load_imm(0, 1, 0x3000);
        st.execute(&mut setup);
        let mut ld = DynInst::new(
            1,
            4,
            InstKind::Load {
                dst: r(2),
                base: r(1),
                offset: 24,
                width: MemWidth::W8,
            },
        );
        assert_eq!(st.effective_address(&ld), Some(0x3018));
        st.execute(&mut ld);
        assert_eq!(ld.mem.unwrap().addr, 0x3018);
    }

    #[test]
    fn retired_counts_instructions() {
        let mut st = ArchState::new();
        let mut trace = vec![
            load_imm(0, 1, 1),
            load_imm(1, 2, 2),
            DynInst::new(2, 8, InstKind::Nop),
        ];
        st.execute_all(&mut trace);
        assert_eq!(st.retired(), 3);
    }
}
