//! A sparse functional memory image.
//!
//! Both the oracle executor and the out-of-order core's committed-state model use this
//! structure, and both initialise untouched memory with the same deterministic
//! address-hash so they agree on the value of any location that has never been written.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::{Addr, MemWidth, Value};

/// A deterministic multiplicative hasher for integer keys (addresses, PCs).
///
/// The memory image sits on the simulator's hottest path — every simulated load that
/// does not forward reads it — and the standard library's default SipHash is built
/// for HashDoS resistance this closed-world simulator does not need. One
/// multiply-xorshift round mixes word addresses (whose low bits are already zero)
/// well, and a fixed seed keeps every run identical.
#[derive(Clone, Default)]
pub struct IntKeyHasher(u64);

impl Hasher for IntKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); the integer-key fast paths below are the ones
        // that matter.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let mut x = (v ^ self.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        self.0 = x;
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// A `HashMap` keyed by integers using [`IntKeyHasher`] — deterministic and fast.
pub type IntKeyMap<K, V> = HashMap<K, V, BuildHasherDefault<IntKeyHasher>>;

/// A sparse, word-granular functional memory image.
///
/// Storage is keyed by 8-byte-aligned word address; sub-word (4-byte) accesses are
/// merged into the containing word. Accesses must be naturally aligned and must not
/// cross an 8-byte boundary — the workload generator guarantees this, and the methods
/// assert it.
#[derive(Clone, Debug, Default)]
pub struct MemoryImage {
    words: IntKeyMap<Addr, Value>,
}

impl MemoryImage {
    /// Creates an empty image. Every location initially holds the deterministic
    /// background pattern returned by [`MemoryImage::background`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets every written word (every location reads the background pattern
    /// again), retaining the underlying hash-table capacity for reuse.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// The deterministic background value of an 8-byte word that has never been
    /// written. A multiplicative hash of the word address keeps untouched memory
    /// value-diverse so that accidental "silent stores" essentially never occur unless
    /// a workload engineers them.
    #[inline]
    pub fn background(word_addr: Addr) -> Value {
        (word_addr >> 3)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(31)
            ^ 0xA5A5_5A5A_DEAD_BEEF
    }

    #[inline]
    fn word_of(addr: Addr) -> Addr {
        addr & !0x7
    }

    #[inline]
    fn check_alignment(addr: Addr, width: MemWidth) {
        assert_eq!(
            addr % width.bytes(),
            0,
            "unaligned {width} access at {addr:#x}"
        );
    }

    /// Reads `width` bytes at `addr`, zero-extended to 64 bits.
    ///
    /// # Panics
    ///
    /// Panics if the access is not naturally aligned.
    pub fn read(&self, addr: Addr, width: MemWidth) -> Value {
        Self::check_alignment(addr, width);
        let word_addr = Self::word_of(addr);
        let word = self
            .words
            .get(&word_addr)
            .copied()
            .unwrap_or_else(|| Self::background(word_addr));
        match width {
            MemWidth::W8 => word,
            MemWidth::W4 => {
                let shift = (addr - word_addr) * 8;
                (word >> shift) & width.mask()
            }
        }
    }

    /// Writes the low `width` bytes of `value` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the access is not naturally aligned.
    pub fn write(&mut self, addr: Addr, width: MemWidth, value: Value) {
        Self::check_alignment(addr, width);
        let word_addr = Self::word_of(addr);
        let old = self
            .words
            .get(&word_addr)
            .copied()
            .unwrap_or_else(|| Self::background(word_addr));
        let new = match width {
            MemWidth::W8 => value,
            MemWidth::W4 => {
                let shift = (addr - word_addr) * 8;
                let mask = width.mask() << shift;
                (old & !mask) | ((value & width.mask()) << shift)
            }
        };
        self.words.insert(word_addr, new);
    }

    /// Returns `true` if writing `value` with `width` at `addr` would leave memory
    /// unchanged — i.e. the write would be a *silent store*.
    pub fn would_be_silent(&self, addr: Addr, width: MemWidth, value: Value) -> bool {
        self.read(addr, width) == (value & width.mask())
    }

    /// Number of distinct 8-byte words that have been written at least once.
    pub fn touched_words(&self) -> usize {
        self.words.len()
    }

    /// Every touched word and its current value, sorted by address. Differential
    /// verification compares two images with this (hash-map iteration order is not
    /// deterministic, so the sort keeps divergence reports stable).
    pub fn touched_snapshot(&self) -> Vec<(Addr, Value)> {
        let mut words: Vec<(Addr, Value)> = self.words.iter().map(|(&a, &v)| (a, v)).collect();
        words.sort_unstable();
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_of_untouched_memory_is_background() {
        let m = MemoryImage::new();
        assert_eq!(
            m.read(0x1000, MemWidth::W8),
            MemoryImage::background(0x1000)
        );
        // Two different words have different background values (value diversity).
        assert_ne!(m.read(0x1000, MemWidth::W8), m.read(0x1008, MemWidth::W8));
    }

    #[test]
    fn write_then_read_roundtrip_w8() {
        let mut m = MemoryImage::new();
        m.write(0x2000, MemWidth::W8, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read(0x2000, MemWidth::W8), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn write_then_read_roundtrip_w4() {
        let mut m = MemoryImage::new();
        m.write(0x2000, MemWidth::W4, 0x1234_5678);
        m.write(0x2004, MemWidth::W4, 0x9ABC_DEF0);
        assert_eq!(m.read(0x2000, MemWidth::W4), 0x1234_5678);
        assert_eq!(m.read(0x2004, MemWidth::W4), 0x9ABC_DEF0);
        // The containing quadword sees both halves.
        assert_eq!(m.read(0x2000, MemWidth::W8), 0x9ABC_DEF0_1234_5678);
    }

    #[test]
    fn sub_word_write_preserves_other_half() {
        let mut m = MemoryImage::new();
        m.write(0x3000, MemWidth::W8, 0x1111_1111_2222_2222);
        m.write(0x3004, MemWidth::W4, 0xFFFF_FFFF);
        assert_eq!(m.read(0x3000, MemWidth::W8), 0xFFFF_FFFF_2222_2222);
        assert_eq!(m.read(0x3000, MemWidth::W4), 0x2222_2222);
    }

    #[test]
    fn w4_write_masks_high_bits() {
        let mut m = MemoryImage::new();
        m.write(0x4000, MemWidth::W4, 0xFFFF_FFFF_0000_0001);
        assert_eq!(m.read(0x4000, MemWidth::W4), 1);
    }

    #[test]
    fn silent_store_detection() {
        let mut m = MemoryImage::new();
        m.write(0x5000, MemWidth::W8, 42);
        assert!(m.would_be_silent(0x5000, MemWidth::W8, 42));
        assert!(!m.would_be_silent(0x5000, MemWidth::W8, 43));
        // A store of the background value to untouched memory is also silent.
        let bg = MemoryImage::background(0x6000);
        assert!(m.would_be_silent(0x6000, MemWidth::W8, bg));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        let m = MemoryImage::new();
        let _ = m.read(0x1001, MemWidth::W4);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_write_panics() {
        let mut m = MemoryImage::new();
        m.write(0x1004, MemWidth::W8, 0);
    }

    #[test]
    fn touched_words_counts_distinct_words() {
        let mut m = MemoryImage::new();
        m.write(0x1000, MemWidth::W4, 1);
        m.write(0x1004, MemWidth::W4, 2); // same word
        m.write(0x1008, MemWidth::W8, 3);
        assert_eq!(m.touched_words(), 2);
    }
}
