//! Streaming instruction sources.
//!
//! A trace does not have to be materialized as a [`Program`] to be replayed: anything
//! that can hand out [`DynInst`]s in sequence-number order — a decoder reading a
//! `.svwt` file, a generator producing instructions on the fly — can implement
//! [`InstStream`] and be fed to the timing model, which buffers only the in-flight
//! window it needs.

use crate::{DynInst, Program};

/// A source of dynamic instructions in program (sequence-number) order.
///
/// Implementations must produce exactly [`InstStream::len`] instructions whose `seq`
/// fields equal their position in the stream (0, 1, 2, …) — the same invariant
/// [`Program`] traces satisfy — and then return `None` forever.
pub trait InstStream {
    /// The workload name (e.g. `"gcc"`).
    fn name(&self) -> &str;

    /// The total number of instructions this stream will produce.
    fn len(&self) -> usize;

    /// Returns `true` if the stream will produce no instructions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the next instruction, or `None` once the stream is exhausted.
    fn next_inst(&mut self) -> Option<DynInst>;
}

/// An [`InstStream`] over an owned [`Program`] (mainly for tests and benchmarks; when
/// a `Program` is already materialized, replaying it by reference is cheaper).
#[derive(Clone, Debug)]
pub struct ProgramStream {
    program: Program,
    next: usize,
}

impl ProgramStream {
    /// Wraps an owned program.
    pub fn new(program: Program) -> Self {
        ProgramStream { program, next: 0 }
    }
}

impl InstStream for ProgramStream {
    fn name(&self) -> &str {
        self.program.name()
    }

    fn len(&self) -> usize {
        self.program.len()
    }

    fn next_inst(&mut self) -> Option<DynInst> {
        let inst = self.program.instructions().get(self.next)?.clone();
        self.next += 1;
        Some(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchReg, ArchState, InstKind, MemWidth};

    fn program() -> Program {
        let r = ArchReg::new;
        let mut trace = vec![
            DynInst::new(
                0,
                0,
                InstKind::LoadImm {
                    dst: r(1),
                    imm: 0x1000,
                },
            ),
            DynInst::new(
                1,
                4,
                InstKind::Store {
                    data: r(1),
                    base: r(1),
                    offset: 0,
                    width: MemWidth::W8,
                },
            ),
            DynInst::new(
                2,
                8,
                InstKind::Load {
                    dst: r(2),
                    base: r(1),
                    offset: 0,
                    width: MemWidth::W8,
                },
            ),
        ];
        ArchState::new().execute_all(&mut trace);
        Program::new("unit", trace)
    }

    #[test]
    fn program_stream_yields_all_instructions_in_order() {
        let p = program();
        let expected: Vec<DynInst> = p.instructions().to_vec();
        let mut s = ProgramStream::new(p);
        assert_eq!(s.name(), "unit");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let mut got = Vec::new();
        while let Some(inst) = s.next_inst() {
            got.push(inst);
        }
        assert_eq!(got, expected);
        assert!(s.next_inst().is_none());
    }
}
