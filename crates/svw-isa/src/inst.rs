//! Dynamic instruction records.

use crate::{Addr, ArchReg, BranchKind, InstSeq, MemWidth, OpClass, Pc, Value};

/// The operation performed by a dynamic instruction, with its register operands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstKind {
    /// `dst = op(src1, src2)` — single-cycle integer ALU operation.
    IntAlu {
        /// Operation kind.
        op: crate::AluKind,
        /// Destination register.
        dst: ArchReg,
        /// First source register.
        src1: ArchReg,
        /// Second source register.
        src2: ArchReg,
    },
    /// `dst = src1 * src2` — multi-cycle integer multiply.
    IntMul {
        /// Destination register.
        dst: ArchReg,
        /// First source register.
        src1: ArchReg,
        /// Second source register.
        src2: ArchReg,
    },
    /// Floating-point operation (value semantics are an integer mix; only the latency
    /// and issue-port usage matter to the study).
    FpAlu {
        /// Destination register.
        dst: ArchReg,
        /// First source register.
        src1: ArchReg,
        /// Second source register.
        src2: ArchReg,
    },
    /// `dst = imm` — constant materialisation.
    LoadImm {
        /// Destination register.
        dst: ArchReg,
        /// Immediate value.
        imm: u64,
    },
    /// `dst = mem[base + offset]`.
    Load {
        /// Destination register.
        dst: ArchReg,
        /// Base address register.
        base: ArchReg,
        /// Signed displacement.
        offset: i64,
        /// Access width.
        width: MemWidth,
    },
    /// `mem[base + offset] = data`.
    Store {
        /// Register providing the stored value.
        data: ArchReg,
        /// Base address register.
        base: ArchReg,
        /// Signed displacement.
        offset: i64,
        /// Access width.
        width: MemWidth,
    },
    /// Control transfer. The architectural outcome (`info.taken`, `info.target`) is
    /// resolved in the trace; the simulator's branch predictor is scored against it.
    Branch {
        /// Branch category.
        kind: BranchKind,
        /// Resolved outcome and targets.
        info: BranchInfo,
        /// Source register the condition nominally depends on (times the branch's
        /// resolution in the dataflow graph).
        src1: ArchReg,
    },
    /// No-operation.
    Nop,
}

/// Resolved control-flow information for a branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchInfo {
    /// Whether the branch is architecturally taken.
    pub taken: bool,
    /// Target PC if taken.
    pub target: Pc,
    /// Fall-through PC (the next sequential PC).
    pub fallthrough: Pc,
}

impl BranchInfo {
    /// The PC the branch actually transfers control to.
    #[inline]
    pub fn next_pc(&self) -> Pc {
        if self.taken {
            self.target
        } else {
            self.fallthrough
        }
    }
}

/// Resolved memory-access information attached to loads and stores by the oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective (byte) address.
    pub addr: Addr,
    /// Access width.
    pub width: MemWidth,
    /// For loads: the correct sequential (program-order) value of the load.
    /// For stores: the value the store writes.
    pub value: Value,
    /// For stores: `true` if the stored value equals the value memory already held
    /// (a *silent store*). Always `false` for loads.
    pub silent: bool,
}

impl MemAccess {
    /// The inclusive byte range `[start, end)` touched by the access.
    #[inline]
    pub fn byte_range(&self) -> (Addr, Addr) {
        (self.addr, self.addr + self.width.bytes())
    }

    /// Returns `true` if this access overlaps `other` (any shared byte).
    #[inline]
    pub fn overlaps(&self, other: &MemAccess) -> bool {
        let (a0, a1) = self.byte_range();
        let (b0, b1) = other.byte_range();
        a0 < b1 && b0 < a1
    }
}

/// A dynamic instruction: one element of the trace replayed by the timing model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynInst {
    /// Dynamic sequence number (index in the trace).
    pub seq: InstSeq,
    /// Program counter of the static instruction this dynamic instance came from.
    pub pc: Pc,
    /// Operation and register operands.
    pub kind: InstKind,
    /// Resolved memory access (filled in by the oracle for loads and stores).
    pub mem: Option<MemAccess>,
}

impl DynInst {
    /// Creates a new dynamic instruction with no resolved memory access. The oracle
    /// executor fills in [`DynInst::mem`] for loads and stores.
    pub fn new(seq: InstSeq, pc: Pc, kind: InstKind) -> Self {
        DynInst {
            seq,
            pc,
            kind,
            mem: None,
        }
    }

    /// The coarse operation class.
    pub fn class(&self) -> OpClass {
        match self.kind {
            InstKind::IntAlu { .. } | InstKind::LoadImm { .. } => OpClass::IntAlu,
            InstKind::IntMul { .. } => OpClass::IntMul,
            InstKind::FpAlu { .. } => OpClass::FpAlu,
            InstKind::Load { .. } => OpClass::Load,
            InstKind::Store { .. } => OpClass::Store,
            InstKind::Branch { .. } => OpClass::Branch,
            InstKind::Nop => OpClass::Nop,
        }
    }

    /// Returns `true` for loads.
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self.kind, InstKind::Load { .. })
    }

    /// Returns `true` for stores.
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self.kind, InstKind::Store { .. })
    }

    /// Returns `true` for branches.
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(self.kind, InstKind::Branch { .. })
    }

    /// The destination architectural register, if any. Writes to the zero register are
    /// reported as `None` (they are architecturally dropped).
    pub fn dst(&self) -> Option<ArchReg> {
        let d = match self.kind {
            InstKind::IntAlu { dst, .. }
            | InstKind::IntMul { dst, .. }
            | InstKind::FpAlu { dst, .. }
            | InstKind::LoadImm { dst, .. }
            | InstKind::Load { dst, .. } => Some(dst),
            InstKind::Store { .. } | InstKind::Branch { .. } | InstKind::Nop => None,
        };
        d.filter(|r| !r.is_zero())
    }

    /// The source architectural registers (up to two). The zero register is excluded
    /// because it is always ready and carries no dependence.
    pub fn srcs(&self) -> [Option<ArchReg>; 2] {
        let keep = |r: ArchReg| if r.is_zero() { None } else { Some(r) };
        match self.kind {
            InstKind::IntAlu { src1, src2, .. }
            | InstKind::IntMul { src1, src2, .. }
            | InstKind::FpAlu { src1, src2, .. } => [keep(src1), keep(src2)],
            InstKind::LoadImm { .. } | InstKind::Nop => [None, None],
            InstKind::Load { base, .. } => [keep(base), None],
            InstKind::Store { data, base, .. } => [keep(base), keep(data)],
            InstKind::Branch { src1, .. } => [keep(src1), None],
        }
    }

    /// For loads and stores, the base register and signed offset ("operation
    /// signature" inputs used by register integration).
    pub fn base_and_offset(&self) -> Option<(ArchReg, i64)> {
        match self.kind {
            InstKind::Load { base, offset, .. } | InstKind::Store { base, offset, .. } => {
                Some((base, offset))
            }
            _ => None,
        }
    }

    /// The resolved branch information, if this is a branch.
    pub fn branch_info(&self) -> Option<(BranchKind, BranchInfo)> {
        match self.kind {
            InstKind::Branch { kind, info, .. } => Some((kind, info)),
            _ => None,
        }
    }

    /// The resolved memory access.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is a load or store whose access has not been resolved
    /// by the oracle yet.
    pub fn mem_access(&self) -> &MemAccess {
        self.mem
            .as_ref()
            .expect("memory access not resolved; run the instruction through ArchState::execute")
    }

    /// Effective address if this is a resolved memory instruction.
    pub fn addr(&self) -> Option<Addr> {
        self.mem.as_ref().map(|m| m.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AluKind;

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    #[test]
    fn class_mapping() {
        let alu = DynInst::new(
            0,
            0,
            InstKind::IntAlu {
                op: AluKind::Add,
                dst: r(1),
                src1: r(2),
                src2: r(3),
            },
        );
        assert_eq!(alu.class(), OpClass::IntAlu);
        let ld = DynInst::new(
            1,
            4,
            InstKind::Load {
                dst: r(1),
                base: r(2),
                offset: 0,
                width: MemWidth::W8,
            },
        );
        assert_eq!(ld.class(), OpClass::Load);
        assert!(ld.is_load());
        assert!(!ld.is_store());
        let st = DynInst::new(
            2,
            8,
            InstKind::Store {
                data: r(1),
                base: r(2),
                offset: 0,
                width: MemWidth::W8,
            },
        );
        assert_eq!(st.class(), OpClass::Store);
        assert!(st.is_store());
    }

    #[test]
    fn zero_register_is_not_a_dependence() {
        let alu = DynInst::new(
            0,
            0,
            InstKind::IntAlu {
                op: AluKind::Add,
                dst: ArchReg::ZERO,
                src1: ArchReg::ZERO,
                src2: r(3),
            },
        );
        assert_eq!(alu.dst(), None);
        assert_eq!(alu.srcs(), [None, Some(r(3))]);
    }

    #[test]
    fn store_sources_include_base_and_data() {
        let st = DynInst::new(
            0,
            0,
            InstKind::Store {
                data: r(4),
                base: r(5),
                offset: 16,
                width: MemWidth::W4,
            },
        );
        assert_eq!(st.srcs(), [Some(r(5)), Some(r(4))]);
        assert_eq!(st.dst(), None);
        assert_eq!(st.base_and_offset(), Some((r(5), 16)));
    }

    #[test]
    fn branch_info_next_pc() {
        let info = BranchInfo {
            taken: true,
            target: 0x100,
            fallthrough: 0x44,
        };
        assert_eq!(info.next_pc(), 0x100);
        let info2 = BranchInfo {
            taken: false,
            ..info
        };
        assert_eq!(info2.next_pc(), 0x44);
    }

    #[test]
    fn mem_access_overlap() {
        let a = MemAccess {
            addr: 0x100,
            width: MemWidth::W8,
            value: 0,
            silent: false,
        };
        let b = MemAccess {
            addr: 0x104,
            width: MemWidth::W4,
            value: 0,
            silent: false,
        };
        let c = MemAccess {
            addr: 0x108,
            width: MemWidth::W8,
            value: 0,
            silent: false,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&b));
    }

    #[test]
    #[should_panic(expected = "not resolved")]
    fn mem_access_unresolved_panics() {
        let ld = DynInst::new(
            0,
            0,
            InstKind::Load {
                dst: r(1),
                base: r(2),
                offset: 0,
                width: MemWidth::W8,
            },
        );
        let _ = ld.mem_access();
    }
}
