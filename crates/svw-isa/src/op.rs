//! Operation vocabulary: instruction classes, ALU kinds, branch kinds, access widths.

use std::fmt;

/// Coarse instruction class used by the issue-port model and statistics.
///
/// The classes correspond to the issue-bandwidth breakdown of the paper's machine
/// configurations (e.g. the 8-wide machine issues "5 integer, 2 FP, 2 load, 2 store,
/// and 1 branch per cycle").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle integer multiply.
    IntMul,
    /// Floating-point operation.
    FpAlu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Control transfer (conditional or unconditional).
    Branch,
    /// No-operation (pipeline filler).
    Nop,
}

impl OpClass {
    /// Returns `true` for classes that reference memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Execution latency in cycles once the operation begins executing, excluding any
    /// memory-system latency (which is modelled separately by the cache hierarchy).
    #[inline]
    pub fn exec_latency(self) -> u64 {
        match self {
            OpClass::IntAlu | OpClass::Nop | OpClass::Branch => 1,
            OpClass::IntMul => 3,
            OpClass::FpAlu => 4,
            OpClass::Load | OpClass::Store => 1, // address generation
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int",
            OpClass::IntMul => "mul",
            OpClass::FpAlu => "fp",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// Integer ALU operation kinds with deterministic functional semantics.
///
/// The exact arithmetic is unimportant to the timing study; what matters is that it is
/// deterministic (so the oracle and any re-execution agree) and value-diverse (so silent
/// stores only happen when the workload generator engineers them).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluKind {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left by (src2 & 63).
    Shl,
    /// Logical shift right by (src2 & 63).
    Shr,
    /// Compare: 1 if src1 < src2 else 0 (unsigned).
    CmpLt,
    /// A value-mixing operation (multiply-xor-rotate) used to make data streams
    /// look "random" while staying deterministic.
    Mix,
}

impl AluKind {
    /// Stable wire code used by the `.svwt` trace format. Codes are append-only:
    /// existing assignments must never change, or archived traces become unreadable.
    #[inline]
    pub fn to_wire(self) -> u8 {
        match self {
            AluKind::Add => 0,
            AluKind::Sub => 1,
            AluKind::And => 2,
            AluKind::Or => 3,
            AluKind::Xor => 4,
            AluKind::Shl => 5,
            AluKind::Shr => 6,
            AluKind::CmpLt => 7,
            AluKind::Mix => 8,
        }
    }

    /// Decodes a wire code written by [`AluKind::to_wire`].
    #[inline]
    pub fn from_wire(code: u8) -> Option<AluKind> {
        Some(match code {
            0 => AluKind::Add,
            1 => AluKind::Sub,
            2 => AluKind::And,
            3 => AluKind::Or,
            4 => AluKind::Xor,
            5 => AluKind::Shl,
            6 => AluKind::Shr,
            7 => AluKind::CmpLt,
            8 => AluKind::Mix,
            _ => return None,
        })
    }

    /// Applies the operation to two operand values.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluKind::Add => a.wrapping_add(b),
            AluKind::Sub => a.wrapping_sub(b),
            AluKind::And => a & b,
            AluKind::Or => a | b,
            AluKind::Xor => a ^ b,
            AluKind::Shl => a.wrapping_shl((b & 63) as u32),
            AluKind::Shr => a.wrapping_shr((b & 63) as u32),
            AluKind::CmpLt => u64::from(a < b),
            AluKind::Mix => {
                a.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
                    ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            }
        }
    }
}

/// Branch kinds, distinguished because they train different predictor structures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch.
    Conditional,
    /// Unconditional direct jump.
    Jump,
    /// Direct call.
    Call,
    /// Return (indirect through the return-address stack).
    Return,
    /// Other indirect branch (switch tables, virtual dispatch).
    Indirect,
}

impl BranchKind {
    /// Stable wire code used by the `.svwt` trace format (append-only; see
    /// [`AluKind::to_wire`]).
    #[inline]
    pub fn to_wire(self) -> u8 {
        match self {
            BranchKind::Conditional => 0,
            BranchKind::Jump => 1,
            BranchKind::Call => 2,
            BranchKind::Return => 3,
            BranchKind::Indirect => 4,
        }
    }

    /// Decodes a wire code written by [`BranchKind::to_wire`].
    #[inline]
    pub fn from_wire(code: u8) -> Option<BranchKind> {
        Some(match code {
            0 => BranchKind::Conditional,
            1 => BranchKind::Jump,
            2 => BranchKind::Call,
            3 => BranchKind::Return,
            4 => BranchKind::Indirect,
            _ => return None,
        })
    }

    /// Returns `true` if the branch is unconditionally taken.
    #[inline]
    pub fn is_unconditional(self) -> bool {
        !matches!(self, BranchKind::Conditional)
    }
}

/// Memory access widths supported by the ISA.
///
/// The SVW paper's SSBF tracks conflicts at 8-byte granularity by default (making it
/// vulnerable to "false sharing due to non-overlapping sub-quad writes") and is also
/// evaluated at 4-byte granularity; supporting both widths lets the reproduction
/// exercise that effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemWidth {
    /// 4-byte (word) access.
    W4,
    /// 8-byte (quadword) access.
    W8,
}

impl MemWidth {
    /// Stable wire code used by the `.svwt` trace format (append-only; see
    /// [`AluKind::to_wire`]).
    #[inline]
    pub fn to_wire(self) -> u8 {
        match self {
            MemWidth::W4 => 0,
            MemWidth::W8 => 1,
        }
    }

    /// Decodes a wire code written by [`MemWidth::to_wire`].
    #[inline]
    pub fn from_wire(code: u8) -> Option<MemWidth> {
        Some(match code {
            0 => MemWidth::W4,
            1 => MemWidth::W8,
            _ => return None,
        })
    }

    /// Size of the access in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::W4 => 4,
            MemWidth::W8 => 8,
        }
    }

    /// Bit mask covering the value bits of this width.
    #[inline]
    pub fn mask(self) -> u64 {
        match self {
            MemWidth::W4 => 0xFFFF_FFFF,
            MemWidth::W8 => u64::MAX,
        }
    }
}

impl fmt::Display for MemWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_mem_predicate() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(!OpClass::Branch.is_mem());
    }

    #[test]
    fn exec_latencies_are_positive() {
        for c in [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::FpAlu,
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch,
            OpClass::Nop,
        ] {
            assert!(c.exec_latency() >= 1);
        }
    }

    #[test]
    fn alu_semantics_basic() {
        assert_eq!(AluKind::Add.apply(2, 3), 5);
        assert_eq!(AluKind::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluKind::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluKind::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluKind::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluKind::Shl.apply(1, 4), 16);
        assert_eq!(AluKind::Shr.apply(16, 4), 1);
        assert_eq!(AluKind::CmpLt.apply(1, 2), 1);
        assert_eq!(AluKind::CmpLt.apply(2, 1), 0);
    }

    #[test]
    fn alu_mix_is_deterministic_and_value_diverse() {
        let a = AluKind::Mix.apply(1, 2);
        let b = AluKind::Mix.apply(1, 2);
        let c = AluKind::Mix.apply(2, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shift_amount_is_masked() {
        assert_eq!(AluKind::Shl.apply(1, 64), 1);
        assert_eq!(AluKind::Shr.apply(2, 65), 1);
    }

    #[test]
    fn mem_width_sizes() {
        assert_eq!(MemWidth::W4.bytes(), 4);
        assert_eq!(MemWidth::W8.bytes(), 8);
        assert_eq!(MemWidth::W4.mask(), 0xFFFF_FFFF);
        assert_eq!(MemWidth::W8.mask(), u64::MAX);
    }

    #[test]
    fn wire_codes_round_trip() {
        for k in [
            AluKind::Add,
            AluKind::Sub,
            AluKind::And,
            AluKind::Or,
            AluKind::Xor,
            AluKind::Shl,
            AluKind::Shr,
            AluKind::CmpLt,
            AluKind::Mix,
        ] {
            assert_eq!(AluKind::from_wire(k.to_wire()), Some(k));
        }
        assert_eq!(AluKind::from_wire(9), None);
        for k in [
            BranchKind::Conditional,
            BranchKind::Jump,
            BranchKind::Call,
            BranchKind::Return,
            BranchKind::Indirect,
        ] {
            assert_eq!(BranchKind::from_wire(k.to_wire()), Some(k));
        }
        assert_eq!(BranchKind::from_wire(5), None);
        for w in [MemWidth::W4, MemWidth::W8] {
            assert_eq!(MemWidth::from_wire(w.to_wire()), Some(w));
        }
        assert_eq!(MemWidth::from_wire(2), None);
    }

    #[test]
    fn branch_kind_unconditional() {
        assert!(!BranchKind::Conditional.is_unconditional());
        assert!(BranchKind::Jump.is_unconditional());
        assert!(BranchKind::Return.is_unconditional());
    }
}
