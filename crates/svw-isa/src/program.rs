//! A resolved dynamic trace ([`Program`]) and summary statistics over it.

use crate::{DynInst, OpClass};

/// Mix and memory-behaviour statistics of a trace, computed once by
/// [`Program::stats`]. Useful for validating that generated workloads hit their
/// profile targets and for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProgramStats {
    /// Total dynamic instructions.
    pub total: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic branches.
    pub branches: u64,
    /// Dynamic conditional branches that are taken.
    pub taken_branches: u64,
    /// Dynamic floating-point operations.
    pub fp_ops: u64,
    /// Silent stores (store value equals prior memory contents).
    pub silent_stores: u64,
    /// Loads whose address was written by one of the previous `FORWARDING_WINDOW`
    /// stores (an approximation of in-flight store-to-load forwarding opportunities).
    pub forwarding_loads: u64,
}

/// How many prior stores count as "recent" when estimating store-to-load forwarding
/// density in [`Program::stats`]. Roughly the store capacity of the large machine.
const FORWARDING_WINDOW: usize = 64;

impl ProgramStats {
    /// Load fraction of the dynamic instruction stream.
    pub fn load_fraction(&self) -> f64 {
        self.loads as f64 / self.total.max(1) as f64
    }

    /// Store fraction of the dynamic instruction stream.
    pub fn store_fraction(&self) -> f64 {
        self.stores as f64 / self.total.max(1) as f64
    }

    /// Branch fraction of the dynamic instruction stream.
    pub fn branch_fraction(&self) -> f64 {
        self.branches as f64 / self.total.max(1) as f64
    }

    /// Fraction of loads that read an address written by a recent store.
    pub fn forwarding_fraction(&self) -> f64 {
        self.forwarding_loads as f64 / self.loads.max(1) as f64
    }
}

/// A fully resolved dynamic instruction trace plus the name of the workload it came
/// from.
#[derive(Clone, Debug)]
pub struct Program {
    name: String,
    trace: Vec<DynInst>,
}

impl Program {
    /// Wraps a resolved trace. Every load/store in `trace` must already carry its
    /// [`crate::MemAccess`] record (i.e. the trace has been run through
    /// [`crate::ArchState::execute_all`]).
    ///
    /// # Panics
    ///
    /// Panics if a memory instruction is unresolved.
    pub fn new(name: impl Into<String>, trace: Vec<DynInst>) -> Self {
        for inst in &trace {
            if inst.class().is_mem() {
                assert!(
                    inst.mem.is_some(),
                    "instruction {} at pc {:#x} has an unresolved memory access",
                    inst.seq,
                    inst.pc
                );
            }
        }
        Program {
            name: name.into(),
            trace,
        }
    }

    /// The workload name (e.g. `"gcc"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dynamic instructions, in program order.
    pub fn instructions(&self) -> &[DynInst] {
        &self.trace
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Returns `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Computes mix and memory-behaviour statistics for the trace.
    pub fn stats(&self) -> ProgramStats {
        let mut s = ProgramStats::default();
        let mut recent_stores: std::collections::VecDeque<u64> =
            std::collections::VecDeque::with_capacity(FORWARDING_WINDOW);
        let mut recent_set: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        for inst in &self.trace {
            s.total += 1;
            match inst.class() {
                OpClass::Load => {
                    s.loads += 1;
                    let word = inst.mem_access().addr & !0x7;
                    if recent_set.contains_key(&word) {
                        s.forwarding_loads += 1;
                    }
                }
                OpClass::Store => {
                    s.stores += 1;
                    let acc = inst.mem_access();
                    if acc.silent {
                        s.silent_stores += 1;
                    }
                    let word = acc.addr & !0x7;
                    if recent_stores.len() == FORWARDING_WINDOW {
                        if let Some(old) = recent_stores.pop_front() {
                            if let Some(count) = recent_set.get_mut(&old) {
                                *count -= 1;
                                if *count == 0 {
                                    recent_set.remove(&old);
                                }
                            }
                        }
                    }
                    recent_stores.push_back(word);
                    *recent_set.entry(word).or_insert(0) += 1;
                }
                OpClass::Branch => {
                    s.branches += 1;
                    if let Some((_, info)) = inst.branch_info() {
                        if info.taken {
                            s.taken_branches += 1;
                        }
                    }
                }
                OpClass::FpAlu => s.fp_ops += 1,
                _ => {}
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchReg, ArchState, InstKind, MemWidth};

    fn build_small_trace() -> Vec<DynInst> {
        let r = ArchReg::new;
        let mut trace = vec![
            DynInst::new(
                0,
                0,
                InstKind::LoadImm {
                    dst: r(1),
                    imm: 0x1000,
                },
            ),
            DynInst::new(1, 4, InstKind::LoadImm { dst: r(2), imm: 7 }),
            DynInst::new(
                2,
                8,
                InstKind::Store {
                    data: r(2),
                    base: r(1),
                    offset: 0,
                    width: MemWidth::W8,
                },
            ),
            DynInst::new(
                3,
                12,
                InstKind::Load {
                    dst: r(3),
                    base: r(1),
                    offset: 0,
                    width: MemWidth::W8,
                },
            ),
            DynInst::new(
                4,
                16,
                InstKind::Store {
                    data: r(2),
                    base: r(1),
                    offset: 0,
                    width: MemWidth::W8,
                },
            ),
        ];
        ArchState::new().execute_all(&mut trace);
        trace
    }

    #[test]
    fn stats_count_classes_and_forwarding() {
        let p = Program::new("unit", build_small_trace());
        let s = p.stats();
        assert_eq!(s.total, 5);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 2);
        assert_eq!(s.silent_stores, 1); // the second identical store
        assert_eq!(s.forwarding_loads, 1); // the load follows a store to the same word
        assert!(s.load_fraction() > 0.19 && s.load_fraction() < 0.21);
    }

    #[test]
    #[should_panic(expected = "unresolved memory access")]
    fn unresolved_trace_is_rejected() {
        let r = ArchReg::new;
        let trace = vec![DynInst::new(
            0,
            0,
            InstKind::Load {
                dst: r(1),
                base: r(2),
                offset: 0,
                width: MemWidth::W8,
            },
        )];
        let _ = Program::new("bad", trace);
    }

    #[test]
    fn accessors() {
        let p = Program::new("unit", build_small_trace());
        assert_eq!(p.name(), "unit");
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.instructions().len(), 5);
    }
}
