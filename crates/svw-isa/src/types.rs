//! Fundamental scalar newtypes and aliases.

use std::fmt;

/// A byte address in the simulated (64-bit, flat) address space.
pub type Addr = u64;

/// A 64-bit data value. Narrower accesses are zero-extended into this type.
pub type Value = u64;

/// A program counter. Static instructions are 4 bytes apart.
pub type Pc = u64;

/// A dynamic instruction sequence number (its index in the trace).
pub type InstSeq = u64;

/// Number of architectural (logical) registers visible to the workload generator.
///
/// The ISA is deliberately generous with logical registers (Alpha-like 64: 32 integer +
/// 32 floating-point conceptually, flattened into one file) so that the generator can
/// express realistic dependence distances without artificial false dependences.
pub const NUM_ARCH_REGS: usize = 64;

/// An architectural (logical) register identifier.
///
/// `ArchReg(0)` is a hard-wired zero register: writes to it are dropped by the oracle
/// and it always reads as zero, which mirrors common RISC ISAs and gives the workload
/// generator a convenient sink/source.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg(u8);

impl ArchReg {
    /// The hard-wired zero register.
    pub const ZERO: ArchReg = ArchReg(0);

    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS`.
    #[inline]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_ARCH_REGS,
            "architectural register index {index} out of range"
        );
        ArchReg(index)
    }

    /// Returns the raw register index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is the hard-wired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<ArchReg> for usize {
    fn from(r: ArchReg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_reg_roundtrip() {
        for i in 0..NUM_ARCH_REGS as u8 {
            let r = ArchReg::new(i);
            assert_eq!(r.index(), i as usize);
            assert_eq!(r.is_zero(), i == 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arch_reg_out_of_range_panics() {
        let _ = ArchReg::new(NUM_ARCH_REGS as u8);
    }

    #[test]
    fn arch_reg_display() {
        assert_eq!(ArchReg::new(7).to_string(), "r7");
        assert_eq!(format!("{:?}", ArchReg::new(63)), "r63");
    }

    #[test]
    fn zero_register_constant() {
        assert!(ArchReg::ZERO.is_zero());
        assert_eq!(ArchReg::ZERO, ArchReg::new(0));
    }
}
