//! # svw-rle — redundant load elimination via register integration
//!
//! The third load optimization the paper studies removes dynamically redundant loads
//! from the execution engine entirely. The implementation modelled here is *register
//! integration*: an **integration table (IT)** tracks the "operation signatures"
//! (operation + physical-register inputs + displacement) of recently executed loads and
//! stores; a load whose signature matches an IT entry is *eliminated* — its output
//! register is simply renamed to the physical register already holding the value
//! (load reuse), or to the data register of the producing store (speculative memory
//! bypassing).
//!
//! Eliminated loads never execute, so an unaccounted-for intervening store makes the
//! elimination wrong; pre-commit re-execution detects such *false eliminations*. That
//! re-execution stream is what SVW filters: a non-redundant load records `SSN_rename`
//! in the IT entry it creates, and an eliminated load adopts that SSN as its
//! vulnerability-window boundary.
//!
//! The paper also discusses *squash reuse* — a re-fetched load integrating the result
//! of its own squashed incarnation. SVW must be disabled for squash-reuse eliminations
//! (a forwarding store may exist on the squashed path but not the correct path, which
//! the SSBF cannot capture), and the `SVW−SQU` configuration disables squash reuse
//! entirely; both behaviours are supported through [`ItConfig::squash_reuse`] and
//! [`ItEntry::from_squashed`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod table;

pub use table::{IntegrationTable, ItConfig, ItEntry, ItSignature, ItStats, RleKind};
