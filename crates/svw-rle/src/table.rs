//! The integration table (IT).

use svw_core::Ssn;
use svw_isa::{InstSeq, MemWidth, Value};

/// How an elimination candidate's value was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RleKind {
    /// Load reuse: the entry was created by an older load with the same signature.
    LoadReuse,
    /// Speculative memory bypassing: the entry was created by an older store; the
    /// eliminated load takes the store's data register.
    MemoryBypass,
}

/// The "operation signature" that identifies a redundant memory operation: same base
/// physical register, same displacement, same access width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ItSignature {
    /// Physical register holding the base address.
    pub base_preg: u32,
    /// Signed displacement.
    pub offset: i64,
    /// Access width.
    pub width: MemWidth,
}

/// One integration-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ItEntry {
    /// The signature this entry matches.
    pub signature: ItSignature,
    /// The value the producing instruction bound (the value an eliminated load will
    /// appear to have loaded).
    pub value: Value,
    /// `SSN_rename` at the time the entry was created — the older boundary of the
    /// vulnerability window of any load that integrates this entry.
    pub ssn: Ssn,
    /// Dynamic sequence number of the producing instruction.
    pub producer_seq: InstSeq,
    /// Whether the producer was a load (reuse) or a store (bypassing).
    pub kind: RleKind,
    /// Whether the producing instruction was squashed after creating this entry
    /// (squash reuse). SVW filtering must be disabled for such eliminations.
    pub from_squashed: bool,
}

/// Integration-table geometry and policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ItConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub assoc: usize,
    /// If `false`, entries created by squashed instructions are discarded on a flush
    /// (the paper's `SVW−SQU` configuration). If `true` (default), they survive and
    /// enable squash reuse.
    pub squash_reuse: bool,
}

impl ItConfig {
    /// The paper's RLE configuration: a 512-entry, 2-way set-associative IT with
    /// squash reuse enabled.
    pub fn paper_default() -> Self {
        ItConfig {
            entries: 512,
            assoc: 2,
            squash_reuse: true,
        }
    }

    /// The paper's `SVW−SQU` variant: squash reuse disabled.
    pub fn no_squash_reuse() -> Self {
        ItConfig {
            squash_reuse: false,
            ..Self::paper_default()
        }
    }

    fn sets(&self) -> usize {
        self.entries / self.assoc
    }

    fn validate(&self) {
        assert!(self.assoc >= 1, "IT associativity must be at least 1");
        assert!(
            self.entries.is_multiple_of(self.assoc) && self.sets().is_power_of_two(),
            "IT set count must be a power of two"
        );
    }
}

impl Default for ItConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Elimination statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ItStats {
    /// Lookups performed (one per dynamic load while RLE is enabled).
    pub lookups: u64,
    /// Lookups that hit (eliminated loads).
    pub eliminations: u64,
    /// Eliminations whose producer was a load (reuse).
    pub load_reuse: u64,
    /// Eliminations whose producer was a store (memory bypassing).
    pub memory_bypass: u64,
    /// Eliminations integrating a squashed producer (squash reuse).
    pub squash_reuse: u64,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    entry: Option<ItEntry>,
    lru: u64,
}

/// The integration table: a small set-associative table of [`ItEntry`] keyed by
/// [`ItSignature`].
#[derive(Clone, Debug)]
pub struct IntegrationTable {
    config: ItConfig,
    slots: Vec<Slot>,
    stats: ItStats,
    tick: u64,
}

impl IntegrationTable {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`ItConfig`]).
    pub fn new(config: ItConfig) -> Self {
        let mut it = IntegrationTable {
            config,
            slots: Vec::new(),
            stats: ItStats::default(),
            tick: 0,
        };
        it.reset(config);
        it
    }

    /// Restores the empty state for `config` — observationally identical to
    /// [`IntegrationTable::new`] — retaining the slot storage where sizes allow.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`ItConfig`]).
    pub fn reset(&mut self, config: ItConfig) {
        config.validate();
        self.slots.clear();
        self.slots.resize(
            config.entries,
            Slot {
                entry: None,
                lru: 0,
            },
        );
        self.stats = ItStats::default();
        self.tick = 0;
        self.config = config;
    }

    /// The configured geometry/policy.
    pub fn config(&self) -> &ItConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ItStats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, sig: &ItSignature) -> usize {
        // Mix the base register and offset so different offsets off the same base
        // spread across sets.
        let h = (sig.base_preg as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (sig.offset as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ (sig.width.bytes() << 56);
        (h as usize) & (self.config.sets() - 1)
    }

    fn set_slots(&mut self, set: usize) -> &mut [Slot] {
        let assoc = self.config.assoc;
        &mut self.slots[set * assoc..(set + 1) * assoc]
    }

    /// Looks up an elimination candidate. On a hit the load is eliminated and the
    /// returned entry describes the value it integrates and the SVW boundary it
    /// inherits. Statistics are updated.
    pub fn lookup(&mut self, sig: &ItSignature) -> Option<ItEntry> {
        self.tick += 1;
        let tick = self.tick;
        self.stats.lookups += 1;
        let set = self.set_of(sig);
        let found = self
            .set_slots(set)
            .iter_mut()
            .find(|s| matches!(&s.entry, Some(e) if e.signature == *sig));
        if let Some(slot) = found {
            slot.lru = tick;
            let entry = slot.entry.expect("matched slot holds an entry");
            self.stats.eliminations += 1;
            match entry.kind {
                RleKind::LoadReuse => self.stats.load_reuse += 1,
                RleKind::MemoryBypass => self.stats.memory_bypass += 1,
            }
            if entry.from_squashed {
                self.stats.squash_reuse += 1;
            }
            Some(entry)
        } else {
            None
        }
    }

    /// Probes for a signature without touching statistics or replacement state.
    pub fn probe(&self, sig: &ItSignature) -> Option<&ItEntry> {
        let set = self.set_of(sig);
        let assoc = self.config.assoc;
        self.slots[set * assoc..(set + 1) * assoc]
            .iter()
            .filter_map(|s| s.entry.as_ref())
            .find(|e| e.signature == *sig)
    }

    /// Inserts (or replaces) the entry created by a non-redundant load or a store.
    pub fn insert(&mut self, entry: ItEntry) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(&entry.signature);
        let slots = self.set_slots(set);
        // Same signature already present: overwrite in place.
        if let Some(slot) = slots
            .iter_mut()
            .find(|s| matches!(&s.entry, Some(e) if e.signature == entry.signature))
        {
            slot.entry = Some(entry);
            slot.lru = tick;
            return;
        }
        // Otherwise fill an invalid way or evict the LRU way.
        let victim = slots
            .iter_mut()
            .min_by_key(|s| if s.entry.is_some() { s.lru } else { 0 })
            .expect("IT set has at least one way");
        victim.entry = Some(entry);
        victim.lru = tick;
    }

    /// Invalidates every entry whose base physical register is `preg` — called when
    /// the register is freed/re-allocated so a recycled register can never cause a
    /// false signature match.
    pub fn invalidate_base_preg(&mut self, preg: u32) {
        for s in &mut self.slots {
            if matches!(&s.entry, Some(e) if e.signature.base_preg == preg) {
                s.entry = None;
            }
        }
    }

    /// Handles a pipeline flush at `survivor` (`None` means a full flush): entries
    /// created by squashed producers either become squash-reuse entries (if the
    /// configuration allows squash reuse) or are discarded.
    pub fn flush_after(&mut self, survivor: Option<InstSeq>) {
        for s in &mut self.slots {
            let squashed = match (&s.entry, survivor) {
                (Some(e), Some(seq)) => e.producer_seq > seq,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if squashed {
                if self.config.squash_reuse {
                    if let Some(e) = &mut s.entry {
                        e.from_squashed = true;
                    }
                } else {
                    s.entry = None;
                }
            }
        }
    }

    /// Flash-clears the table (required by the SSN wrap-around drain when RLE is
    /// active, because entry SSNs become incomparable across the wrap).
    pub fn flash_clear(&mut self) {
        for s in &mut self.slots {
            s.entry = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(preg: u32, offset: i64) -> ItSignature {
        ItSignature {
            base_preg: preg,
            offset,
            width: MemWidth::W8,
        }
    }

    fn entry(
        preg: u32,
        offset: i64,
        value: Value,
        ssn: u64,
        seq: InstSeq,
        kind: RleKind,
    ) -> ItEntry {
        ItEntry {
            signature: sig(preg, offset),
            value,
            ssn: Ssn::new(ssn),
            producer_seq: seq,
            kind,
            from_squashed: false,
        }
    }

    #[test]
    fn miss_then_hit_after_insert() {
        let mut it = IntegrationTable::new(ItConfig::paper_default());
        assert_eq!(it.lookup(&sig(7, 16)), None);
        it.insert(entry(7, 16, 0xAB, 10, 100, RleKind::LoadReuse));
        let hit = it.lookup(&sig(7, 16)).expect("entry should hit");
        assert_eq!(hit.value, 0xAB);
        assert_eq!(hit.ssn, Ssn::new(10));
        assert_eq!(it.stats().eliminations, 1);
        assert_eq!(it.stats().load_reuse, 1);
        assert_eq!(it.stats().lookups, 2);
    }

    #[test]
    fn different_offset_or_preg_does_not_match() {
        let mut it = IntegrationTable::new(ItConfig::paper_default());
        it.insert(entry(7, 16, 1, 1, 1, RleKind::LoadReuse));
        assert_eq!(it.lookup(&sig(7, 24)), None);
        assert_eq!(it.lookup(&sig(8, 16)), None);
        let narrow = ItSignature {
            base_preg: 7,
            offset: 16,
            width: MemWidth::W4,
        };
        assert_eq!(it.lookup(&narrow), None);
    }

    #[test]
    fn store_entries_are_memory_bypassing() {
        let mut it = IntegrationTable::new(ItConfig::paper_default());
        it.insert(entry(3, 0, 0xCD, 5, 50, RleKind::MemoryBypass));
        let hit = it.lookup(&sig(3, 0)).unwrap();
        assert_eq!(hit.kind, RleKind::MemoryBypass);
        assert_eq!(it.stats().memory_bypass, 1);
    }

    #[test]
    fn reinsertion_overwrites_in_place() {
        let mut it = IntegrationTable::new(ItConfig::paper_default());
        it.insert(entry(7, 16, 1, 1, 1, RleKind::LoadReuse));
        it.insert(entry(7, 16, 2, 9, 2, RleKind::LoadReuse));
        let hit = it.lookup(&sig(7, 16)).unwrap();
        assert_eq!(hit.value, 2);
        assert_eq!(hit.ssn, Ssn::new(9));
    }

    #[test]
    fn preg_invalidation_removes_matching_entries() {
        let mut it = IntegrationTable::new(ItConfig::paper_default());
        it.insert(entry(7, 16, 1, 1, 1, RleKind::LoadReuse));
        it.insert(entry(8, 16, 2, 2, 2, RleKind::LoadReuse));
        it.invalidate_base_preg(7);
        assert_eq!(it.lookup(&sig(7, 16)), None);
        assert!(it.lookup(&sig(8, 16)).is_some());
    }

    #[test]
    fn flush_marks_squash_reuse_when_enabled() {
        let mut it = IntegrationTable::new(ItConfig::paper_default());
        it.insert(entry(7, 16, 1, 1, 100, RleKind::LoadReuse));
        it.insert(entry(8, 16, 2, 2, 200, RleKind::LoadReuse));
        it.flush_after(Some(150));
        assert!(!it.probe(&sig(7, 16)).unwrap().from_squashed);
        assert!(it.probe(&sig(8, 16)).unwrap().from_squashed);
        let _ = it.lookup(&sig(8, 16));
        assert_eq!(it.stats().squash_reuse, 1);
    }

    #[test]
    fn flush_discards_squashed_entries_when_disabled() {
        let mut it = IntegrationTable::new(ItConfig::no_squash_reuse());
        it.insert(entry(7, 16, 1, 1, 100, RleKind::LoadReuse));
        it.insert(entry(8, 16, 2, 2, 200, RleKind::LoadReuse));
        it.flush_after(Some(150));
        assert!(it.probe(&sig(7, 16)).is_some());
        assert!(it.probe(&sig(8, 16)).is_none());
        it.flush_after(None);
        assert!(it.probe(&sig(7, 16)).is_none());
    }

    #[test]
    fn lru_eviction_within_a_set() {
        // A 2-entry, 2-way table has a single set: three distinct signatures must evict
        // the least recently used one.
        let mut it = IntegrationTable::new(ItConfig {
            entries: 2,
            assoc: 2,
            squash_reuse: true,
        });
        it.insert(entry(1, 0, 10, 1, 1, RleKind::LoadReuse));
        it.insert(entry(2, 0, 20, 2, 2, RleKind::LoadReuse));
        let _ = it.lookup(&sig(1, 0)); // touch entry 1 → entry 2 becomes LRU
        it.insert(entry(3, 0, 30, 3, 3, RleKind::LoadReuse));
        assert!(it.probe(&sig(1, 0)).is_some());
        assert!(it.probe(&sig(2, 0)).is_none());
        assert!(it.probe(&sig(3, 0)).is_some());
    }

    #[test]
    fn reset_matches_new() {
        let cfg = ItConfig::paper_default();
        let mut it = IntegrationTable::new(cfg);
        for i in 0..100u32 {
            it.insert(ItEntry {
                signature: ItSignature {
                    base_preg: i,
                    offset: i as i64 * 8,
                    width: MemWidth::W8,
                },
                value: u64::from(i),
                ssn: Ssn::new(u64::from(i)),
                producer_seq: u64::from(i),
                kind: RleKind::LoadReuse,
                from_squashed: false,
            });
        }
        it.reset(cfg);
        assert_eq!(
            format!("{it:?}"),
            format!("{:?}", IntegrationTable::new(cfg))
        );
    }

    #[test]
    fn flash_clear_empties_the_table() {
        let mut it = IntegrationTable::new(ItConfig::paper_default());
        it.insert(entry(7, 16, 1, 1, 1, RleKind::LoadReuse));
        it.flash_clear();
        assert_eq!(it.lookup(&sig(7, 16)), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = IntegrationTable::new(ItConfig {
            entries: 6,
            assoc: 2,
            squash_reuse: true,
        });
    }
}
