//! Property and determinism tests for the `.svwt` codec: encode→decode is the
//! identity on arbitrary generated programs, capture is byte-deterministic, and a
//! replayed trace drives the timing model to exactly the same statistics as the
//! directly generated program.

use proptest::prelude::*;

use svw_cpu::{Cpu, LsqOrganization, MachineConfig, ReexecMode};
use svw_trace::{read_program_from_slice, write_program_to_vec, TraceReader};
use svw_workloads::WorkloadProfile;

/// A strategy over workload profiles: one of the sixteen SPEC-like profiles or the
/// quicktest profile, optionally with perturbed behaviour knobs (so the codec is
/// exercised on address/mix patterns beyond the named presets).
fn profile_strategy() -> impl Strategy<Value = WorkloadProfile> {
    (0usize..17, 0u64..4).prop_map(|(which, tweak)| {
        let mut p = if which == 16 {
            WorkloadProfile::quicktest()
        } else {
            WorkloadProfile::spec2000int().swap_remove(which)
        };
        match tweak {
            1 => p.chase_frac = (p.chase_frac + 0.05).min(0.3),
            2 => p.silent_store_frac = (p.silent_store_frac + 0.1).min(0.5),
            3 => p.footprint_words = (p.footprint_words / 2).max(1 << 10),
            _ => {}
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encode→decode is the identity for arbitrary generated programs.
    #[test]
    fn encode_decode_is_identity(
        profile in profile_strategy(),
        len in 200usize..2_500,
        seed in 0u64..1_000,
    ) {
        let program = profile.generate(len, seed);
        let bytes = write_program_to_vec(&program, len, seed, profile.fingerprint());
        let replayed = read_program_from_slice(&bytes).unwrap();
        prop_assert_eq!(program.name(), replayed.name());
        prop_assert_eq!(program.instructions(), replayed.instructions());
    }

    /// The compact format is actually compact: well under the ~56 bytes/inst of the
    /// in-memory representation.
    #[test]
    fn encoding_is_compact(seed in 0u64..50) {
        let profile = WorkloadProfile::quicktest();
        let program = profile.generate(2_000, seed);
        let bytes = write_program_to_vec(&program, 2_000, seed, profile.fingerprint());
        let per_inst = bytes.len() as f64 / program.len() as f64;
        prop_assert!(per_inst < 16.0, "encoding costs {per_inst:.1} bytes/inst");
    }
}

/// Same `(profile, trace_len, seed)` ⇒ byte-identical `.svwt` images.
#[test]
fn capture_is_byte_deterministic() {
    for name in ["gcc", "mcf", "vortex"] {
        let profile = WorkloadProfile::by_name(name).unwrap();
        let a = write_program_to_vec(&profile.generate(3_000, 7), 3_000, 7, profile.fingerprint());
        let b = write_program_to_vec(&profile.generate(3_000, 7), 3_000, 7, profile.fingerprint());
        assert_eq!(a, b, "{name}: capture must be byte-deterministic");
        let c = write_program_to_vec(&profile.generate(3_000, 8), 3_000, 8, profile.fingerprint());
        assert_ne!(a, c, "{name}: different seeds give different traces");
    }
}

fn nlq_svw_config() -> MachineConfig {
    MachineConfig::eight_wide(
        "nlq-svw",
        LsqOrganization::Nlq {
            store_exec_bandwidth: 2,
        },
        ReexecMode::Svw(svw_core::SvwConfig::paper_default()),
    )
}

/// Replaying a captured trace produces exactly the statistics of the generated
/// program — materialized or streamed, the timing model cannot tell the difference.
#[test]
fn replayed_trace_reproduces_cpu_stats() {
    let profile = WorkloadProfile::by_name("gcc").unwrap();
    let program = profile.generate(5_000, 11);
    let bytes = write_program_to_vec(&program, 5_000, 11, profile.fingerprint());

    let direct = Cpu::new(nlq_svw_config(), &program).run();

    let materialized_program = read_program_from_slice(&bytes).unwrap();
    let materialized = Cpu::new(nlq_svw_config(), &materialized_program).run();

    let streamed_reader = TraceReader::new(bytes.as_slice()).unwrap();
    let streamed = Cpu::from_stream(nlq_svw_config(), Box::new(streamed_reader)).run();

    let direct_repr = format!("{direct:?}");
    assert_eq!(direct_repr, format!("{materialized:?}"));
    assert_eq!(direct_repr, format!("{streamed:?}"));
    assert!(direct.committed >= 5_000);
}
