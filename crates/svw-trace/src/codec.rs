//! Per-record encode/decode of dynamic instructions (see the crate docs for the
//! format specification).

use std::io::{Read, Write};

use svw_isa::{
    AluKind, ArchReg, BranchInfo, BranchKind, DynInst, InstKind, InstSeq, MemAccess, MemWidth,
};

use crate::varint::{read_byte, read_i64, read_u64, write_i64, write_u64};
use crate::TraceError;

const OP_INT_ALU: u8 = 0;
const OP_INT_MUL: u8 = 1;
const OP_FP_ALU: u8 = 2;
const OP_LOAD_IMM: u8 = 3;
const OP_LOAD: u8 = 4;
const OP_STORE: u8 = 5;
const OP_BRANCH: u8 = 6;
const OP_NOP: u8 = 7;

const FLAG_SHIFT: u8 = 4;
/// Load/Store: the `MemWidth` wire code.
const FLAG_WIDTH: u8 = 1 << 4;
/// Store: the access was silent.
const FLAG_SILENT: u8 = 1 << 5;
/// Branch: architecturally taken.
const FLAG_TAKEN: u8 = 1 << 4;

/// Delta-encoding context threaded through consecutive records.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CodecState {
    prev_pc: u64,
    prev_addr: u64,
}

impl CodecState {
    pub(crate) fn new() -> Self {
        // The first record's pc is encoded as a delta from 0 + 4, and the first memory
        // address as a delta from 0.
        CodecState {
            prev_pc: 0u64.wrapping_sub(4),
            prev_addr: 0,
        }
    }
}

fn reg(r: ArchReg) -> u8 {
    r.index() as u8
}

fn write_reg(out: &mut impl Write, r: ArchReg) -> std::io::Result<()> {
    out.write_all(&[reg(r)])
}

fn read_reg(inp: &mut impl Read) -> Result<ArchReg, TraceError> {
    let b = read_byte(inp)?;
    if (b as usize) < svw_isa::NUM_ARCH_REGS {
        Ok(ArchReg::new(b))
    } else {
        Err(TraceError::Corrupt(format!(
            "register index {b} out of range"
        )))
    }
}

fn mem_of(inst: &DynInst) -> &MemAccess {
    inst.mem
        .as_ref()
        .expect("trace capture requires a resolved trace (run through the oracle)")
}

/// Encodes one instruction. The caller guarantees instructions arrive in sequence
/// order with resolved memory accesses.
pub(crate) fn encode_inst(
    out: &mut impl Write,
    st: &mut CodecState,
    inst: &DynInst,
) -> std::io::Result<()> {
    let (op, flags) = match &inst.kind {
        InstKind::IntAlu { .. } => (OP_INT_ALU, 0),
        InstKind::IntMul { .. } => (OP_INT_MUL, 0),
        InstKind::FpAlu { .. } => (OP_FP_ALU, 0),
        InstKind::LoadImm { .. } => (OP_LOAD_IMM, 0),
        InstKind::Load { width, .. } => (OP_LOAD, width.to_wire() << FLAG_SHIFT),
        InstKind::Store { width, .. } => {
            let silent = if mem_of(inst).silent { FLAG_SILENT } else { 0 };
            (OP_STORE, (width.to_wire() << FLAG_SHIFT) | silent)
        }
        InstKind::Branch { info, .. } => (OP_BRANCH, if info.taken { FLAG_TAKEN } else { 0 }),
        InstKind::Nop => (OP_NOP, 0),
    };
    out.write_all(&[op | flags])?;
    write_i64(out, inst.pc.wrapping_sub(st.prev_pc.wrapping_add(4)) as i64)?;
    st.prev_pc = inst.pc;

    match &inst.kind {
        InstKind::IntAlu {
            op,
            dst,
            src1,
            src2,
        } => {
            out.write_all(&[op.to_wire(), reg(*dst), reg(*src1), reg(*src2)])?;
        }
        InstKind::IntMul { dst, src1, src2 } | InstKind::FpAlu { dst, src1, src2 } => {
            out.write_all(&[reg(*dst), reg(*src1), reg(*src2)])?;
        }
        InstKind::LoadImm { dst, imm } => {
            write_reg(out, *dst)?;
            write_u64(out, *imm)?;
        }
        InstKind::Load {
            dst, base, offset, ..
        } => {
            out.write_all(&[reg(*dst), reg(*base)])?;
            write_i64(out, *offset)?;
            let m = mem_of(inst);
            write_i64(out, m.addr.wrapping_sub(st.prev_addr) as i64)?;
            write_u64(out, m.value)?;
            st.prev_addr = m.addr;
        }
        InstKind::Store {
            data, base, offset, ..
        } => {
            out.write_all(&[reg(*data), reg(*base)])?;
            write_i64(out, *offset)?;
            let m = mem_of(inst);
            write_i64(out, m.addr.wrapping_sub(st.prev_addr) as i64)?;
            write_u64(out, m.value)?;
            st.prev_addr = m.addr;
        }
        InstKind::Branch { kind, info, src1 } => {
            out.write_all(&[kind.to_wire(), reg(*src1)])?;
            write_i64(out, info.target.wrapping_sub(inst.pc) as i64)?;
            write_i64(
                out,
                info.fallthrough.wrapping_sub(inst.pc.wrapping_add(4)) as i64,
            )?;
        }
        InstKind::Nop => {}
    }
    Ok(())
}

/// Decodes one instruction, assigning it sequence number `seq`.
pub(crate) fn decode_inst(
    inp: &mut impl Read,
    st: &mut CodecState,
    seq: InstSeq,
) -> Result<DynInst, TraceError> {
    let tag = read_byte(inp)?;
    let (op, flags) = (tag & 0x0F, tag & 0xF0);
    let pc = st
        .prev_pc
        .wrapping_add(4)
        .wrapping_add(read_i64(inp)? as u64);
    st.prev_pc = pc;

    let mut mem = None;
    let kind = match op {
        OP_INT_ALU => {
            let alu = AluKind::from_wire(read_byte(inp)?)
                .ok_or_else(|| TraceError::Corrupt(format!("bad ALU kind at seq {seq}")))?;
            InstKind::IntAlu {
                op: alu,
                dst: read_reg(inp)?,
                src1: read_reg(inp)?,
                src2: read_reg(inp)?,
            }
        }
        OP_INT_MUL => InstKind::IntMul {
            dst: read_reg(inp)?,
            src1: read_reg(inp)?,
            src2: read_reg(inp)?,
        },
        OP_FP_ALU => InstKind::FpAlu {
            dst: read_reg(inp)?,
            src1: read_reg(inp)?,
            src2: read_reg(inp)?,
        },
        OP_LOAD_IMM => InstKind::LoadImm {
            dst: read_reg(inp)?,
            imm: read_u64(inp)?,
        },
        OP_LOAD | OP_STORE => {
            let width = MemWidth::from_wire((flags & FLAG_WIDTH) >> FLAG_SHIFT)
                .ok_or_else(|| TraceError::Corrupt(format!("bad width at seq {seq}")))?;
            let r1 = read_reg(inp)?;
            let base = read_reg(inp)?;
            let offset = read_i64(inp)?;
            let addr = st.prev_addr.wrapping_add(read_i64(inp)? as u64);
            let value = read_u64(inp)?;
            st.prev_addr = addr;
            mem = Some(MemAccess {
                addr,
                width,
                value,
                silent: op == OP_STORE && flags & FLAG_SILENT != 0,
            });
            if op == OP_LOAD {
                InstKind::Load {
                    dst: r1,
                    base,
                    offset,
                    width,
                }
            } else {
                InstKind::Store {
                    data: r1,
                    base,
                    offset,
                    width,
                }
            }
        }
        OP_BRANCH => {
            let kind = BranchKind::from_wire(read_byte(inp)?)
                .ok_or_else(|| TraceError::Corrupt(format!("bad branch kind at seq {seq}")))?;
            let src1 = read_reg(inp)?;
            let target = pc.wrapping_add(read_i64(inp)? as u64);
            let fallthrough = pc.wrapping_add(4).wrapping_add(read_i64(inp)? as u64);
            InstKind::Branch {
                kind,
                info: BranchInfo {
                    taken: flags & FLAG_TAKEN != 0,
                    target,
                    fallthrough,
                },
                src1,
            }
        }
        OP_NOP => InstKind::Nop,
        other => {
            return Err(TraceError::Corrupt(format!(
                "unknown opcode {other} at seq {seq}"
            )))
        }
    };

    let mut inst = DynInst::new(seq, pc, kind);
    inst.mem = mem;
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svw_isa::ArchState;

    fn round_trip(mut insts: Vec<DynInst>) -> Vec<DynInst> {
        ArchState::new().execute_all(&mut insts);
        let mut buf = Vec::new();
        let mut st = CodecState::new();
        for i in &insts {
            encode_inst(&mut buf, &mut st, i).unwrap();
        }
        let mut input = buf.as_slice();
        let mut st = CodecState::new();
        let decoded: Vec<DynInst> = (0..insts.len())
            .map(|i| decode_inst(&mut input, &mut st, i as InstSeq).unwrap())
            .collect();
        assert!(input.is_empty(), "decoder must consume every byte");
        assert_eq!(insts, decoded);
        decoded
    }

    #[test]
    fn every_instruction_kind_round_trips() {
        let r = ArchReg::new;
        round_trip(vec![
            DynInst::new(
                0,
                0x1000,
                InstKind::LoadImm {
                    dst: r(1),
                    imm: 0x2000,
                },
            ),
            DynInst::new(
                1,
                0x1004,
                InstKind::IntAlu {
                    op: AluKind::Mix,
                    dst: r(2),
                    src1: r(1),
                    src2: r(1),
                },
            ),
            DynInst::new(
                2,
                0x1008,
                InstKind::IntMul {
                    dst: r(3),
                    src1: r(2),
                    src2: r(1),
                },
            ),
            DynInst::new(
                3,
                0x100C,
                InstKind::FpAlu {
                    dst: r(4),
                    src1: r(3),
                    src2: r(2),
                },
            ),
            DynInst::new(
                4,
                0x1010,
                InstKind::Store {
                    data: r(2),
                    base: r(1),
                    offset: 16,
                    width: MemWidth::W8,
                },
            ),
            DynInst::new(
                5,
                0x1014,
                InstKind::Load {
                    dst: r(5),
                    base: r(1),
                    offset: 16,
                    width: MemWidth::W8,
                },
            ),
            DynInst::new(
                6,
                0x1018,
                InstKind::Store {
                    data: r(2),
                    base: r(1),
                    offset: 16,
                    width: MemWidth::W8,
                },
            ), // silent
            DynInst::new(
                7,
                0x101C,
                InstKind::Load {
                    dst: r(6),
                    base: r(1),
                    offset: -8,
                    width: MemWidth::W4,
                },
            ),
            DynInst::new(
                8,
                0x1020,
                InstKind::Branch {
                    kind: BranchKind::Conditional,
                    info: BranchInfo {
                        taken: true,
                        target: 0x1000,
                        fallthrough: 0x1024,
                    },
                    src1: r(6),
                },
            ),
            DynInst::new(9, 0x1024, InstKind::Nop),
        ]);
    }

    #[test]
    fn silent_flag_survives() {
        let r = ArchReg::new;
        let decoded = round_trip(vec![
            DynInst::new(
                0,
                0,
                InstKind::LoadImm {
                    dst: r(1),
                    imm: 0x8000,
                },
            ),
            DynInst::new(
                1,
                4,
                InstKind::Store {
                    data: r(2),
                    base: r(1),
                    offset: 0,
                    width: MemWidth::W8,
                },
            ),
            DynInst::new(
                2,
                8,
                InstKind::Store {
                    data: r(2),
                    base: r(1),
                    offset: 0,
                    width: MemWidth::W8,
                },
            ),
        ]);
        assert!(!decoded[1].mem_access().silent);
        assert!(decoded[2].mem_access().silent);
    }

    #[test]
    fn sequential_pcs_cost_one_delta_byte() {
        let r = ArchReg::new;
        let mut insts = vec![DynInst::new(0, 0x1000, InstKind::Nop)];
        for i in 1..10u64 {
            insts.push(DynInst::new(
                i,
                0x1000 + 4 * i,
                InstKind::IntAlu {
                    op: AluKind::Add,
                    dst: r(1),
                    src1: r(1),
                    src2: r(2),
                },
            ));
        }
        ArchState::new().execute_all(&mut insts);
        let mut buf = Vec::new();
        let mut st = CodecState::new();
        for i in &insts {
            encode_inst(&mut buf, &mut st, i).unwrap();
        }
        // Nop: tag + 2-byte pc delta (first record, pc 0x1000 from origin). Each
        // sequential IntAlu: tag + 1-byte zero pc delta + alu + 3 regs = 6 bytes.
        assert_eq!(buf.len(), (1 + 2) + 9 * 6);
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let buf = [0x0Fu8, 0x00];
        let mut st = CodecState::new();
        assert!(matches!(
            decode_inst(&mut buf.as_slice(), &mut st, 0),
            Err(TraceError::Corrupt(_))
        ));
    }
}
