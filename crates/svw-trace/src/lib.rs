//! # svw-trace — compact binary trace capture/replay and the on-disk trace cache
//!
//! The reproduction's workloads are synthetic, so every experiment used to pay the
//! full cost of regenerating its instruction streams. This crate makes traces
//! first-class artifacts: a [`TraceWriter`] serializes a resolved dynamic trace into
//! the compact `.svwt` format, a streaming [`TraceReader`] replays one back — either
//! materialized into a [`Program`] or incrementally through the
//! [`InstStream`](svw_isa::InstStream) trait without ever holding the whole trace in
//! memory — and a [`TraceCache`] keyed by `(profile fingerprint, trace length, seed)`
//! guarantees each workload is generated exactly once per machine.
//!
//! # The `.svwt` format (version 1)
//!
//! All multi-byte header/trailer fields are little-endian. `varint` denotes LEB128
//! (7 bits per byte, high bit = continuation); `svarint` denotes a zigzag-mapped
//! varint (`(n << 1) ^ (n >> 63)`), used for deltas and signed offsets.
//!
//! ```text
//! header:
//!   magic            4 bytes   "SVWT"
//!   version          u16       1
//!   flags            u16       0 (reserved)
//!   seed             u64       workload-generation seed
//!   fingerprint      u64       WorkloadProfile::fingerprint() (0 if not applicable)
//!   requested_len    u64       instruction count requested from the generator
//!   count            u64       actual number of records that follow
//!   name_len         varint    followed by `name_len` bytes of UTF-8 workload name
//! records (count times, in sequence order; `seq` is implicit — record i has seq i):
//!   tag              1 byte    bits 0..=3: opcode, bits 4..=7: per-opcode flags
//!   pc               svarint   delta from (previous pc + 4); the first record's
//!                              delta is taken from 0 (i.e. it encodes its pc)
//!   ... opcode-specific operand fields (below)
//! trailer:
//!   checksum         u64       FNV-1a over every record byte
//! ```
//!
//! Opcodes (tag bits 0..=3) and their operand fields:
//!
//! | opcode | kind      | flags (bits 4..=7)           | operand fields |
//! |-------:|-----------|------------------------------|----------------|
//! | 0      | `IntAlu`  | —                            | alu-kind byte, dst, src1, src2 |
//! | 1      | `IntMul`  | —                            | dst, src1, src2 |
//! | 2      | `FpAlu`   | —                            | dst, src1, src2 |
//! | 3      | `LoadImm` | —                            | dst, imm varint |
//! | 4      | `Load`    | bit 4: width wire code       | dst, base, offset svarint, addr svarint (delta from previous memory address), value varint |
//! | 5      | `Store`   | bit 4: width, bit 5: silent  | data, base, offset svarint, addr svarint (delta), value varint |
//! | 6      | `Branch`  | bit 4: taken                 | branch-kind byte, src1, target svarint (delta from pc), fallthrough svarint (delta from pc + 4) |
//! | 7      | `Nop`     | —                            | — |
//!
//! Register operands are single bytes (the ISA has 64 architectural registers);
//! enum operands use the stable wire codes defined next to each enum in `svw-isa`
//! ([`svw_isa::AluKind::to_wire`] etc.). Delta encoding exploits trace structure:
//! sequential PCs encode as a single zero byte, and strided address streams produce
//! small deltas. In practice the format costs a few bytes per instruction, roughly an
//! order of magnitude smaller than the in-memory representation.
//!
//! Writing is fully deterministic — no timestamps, no platform-dependent fields — so
//! capturing the same `(profile, len, seed)` twice produces byte-identical files,
//! which the determinism tests assert and the cache relies on.
//!
//! # Example
//!
//! ```
//! use svw_trace::{read_program_from_slice, write_program_to_vec};
//! use svw_workloads::WorkloadProfile;
//!
//! let profile = WorkloadProfile::quicktest();
//! let program = profile.generate(2_000, 7);
//! let bytes = write_program_to_vec(&program, 2_000, 7, profile.fingerprint());
//! let replayed = read_program_from_slice(&bytes).unwrap();
//! assert_eq!(program.instructions(), replayed.instructions());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io;

use svw_isa::Program;

mod bundle;
mod cache;
mod codec;
mod reader;
mod varint;
mod writer;

pub use bundle::{
    pack_bundle, PackStats, TraceBundle, BUNDLE_FILE_EXTENSION, BUNDLE_FORMAT_VERSION, BUNDLE_MAGIC,
};
pub use cache::{CacheOutcome, FetchMeter, TraceCache};
pub use reader::{TraceHeader, TraceReader};
pub use writer::{write_program, TraceWriter};

/// The four magic bytes opening every `.svwt` file.
pub const MAGIC: [u8; 4] = *b"SVWT";

/// The current format version.
pub const FORMAT_VERSION: u16 = 1;

/// Conventional file extension for trace files.
pub const FILE_EXTENSION: &str = "svwt";

/// Errors produced while reading (or validating) a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `SVWT` magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u16),
    /// The byte stream is structurally invalid (bad opcode, truncated record,
    /// over-long varint, invalid UTF-8 name, …).
    Corrupt(String),
    /// The trailing checksum does not match the record bytes.
    ChecksumMismatch {
        /// Checksum recomputed from the record bytes.
        computed: u64,
        /// Checksum stored in the file.
        stored: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a .svwt trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .svwt format version {v} (supported: {FORMAT_VERSION})"
                )
            }
            TraceError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
            TraceError::ChecksumMismatch { computed, stored } => write!(
                f,
                "trace checksum mismatch: computed {computed:#018x}, stored {stored:#018x}"
            ),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Serializes `program` into an in-memory `.svwt` image (see [`write_program`] for the
/// file-oriented API).
pub fn write_program_to_vec(
    program: &Program,
    requested_len: usize,
    seed: u64,
    fingerprint: u64,
) -> Vec<u8> {
    let mut out = Vec::new();
    write_program(&mut out, program, requested_len, seed, fingerprint)
        .expect("writing to a Vec cannot fail");
    out
}

/// Deserializes a `.svwt` image produced by [`write_program_to_vec`] (or read from a
/// file) into a materialized [`Program`].
pub fn read_program_from_slice(bytes: &[u8]) -> Result<Program, TraceError> {
    TraceReader::new(bytes)?.read_program()
}

/// The FNV-1a offset basis used for record checksums.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}
