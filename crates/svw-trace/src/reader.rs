//! Streaming trace replay.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use svw_isa::{DynInst, InstSeq, InstStream, Program};

use crate::codec::{decode_inst, CodecState};
use crate::varint::read_u64;
use crate::{fnv1a, TraceError, FNV_OFFSET, FORMAT_VERSION, MAGIC};

/// The parsed fixed-size portion of a `.svwt` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Workload name.
    pub name: String,
    /// Workload-generation seed.
    pub seed: u64,
    /// Profile fingerprint (0 when the trace did not come from a profile).
    pub fingerprint: u64,
    /// Instruction count that was requested from the generator.
    pub requested_len: u64,
    /// Number of records actually stored.
    pub count: u64,
}

/// Wraps a reader, folding every consumed byte into an FNV-1a checksum.
struct ChecksumRead<R: Read> {
    inner: R,
    checksum: u64,
}

impl<R: Read> Read for ChecksumRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.checksum = fnv1a(self.checksum, &buf[..n]);
        Ok(n)
    }
}

/// Streaming `.svwt` reader.
///
/// Decodes records one at a time: use [`TraceReader::next_record`] (or the
/// [`InstStream`] impl) for incremental replay, or [`TraceReader::read_program`] to
/// materialize the remaining records. The trailing checksum is verified when the last
/// record has been read.
pub struct TraceReader<R: Read> {
    input: ChecksumRead<R>,
    header: TraceHeader,
    state: CodecState,
    next_seq: InstSeq,
    verified: bool,
}

impl TraceReader<BufReader<File>> {
    /// Opens and parses the header of the trace file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Parses the header from `input`.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        read_exact(&mut input, &mut magic)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u16::from_le_bytes(read_array(&mut input)?);
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let _flags = u16::from_le_bytes(read_array(&mut input)?);
        let seed = u64::from_le_bytes(read_array(&mut input)?);
        let fingerprint = u64::from_le_bytes(read_array(&mut input)?);
        let requested_len = u64::from_le_bytes(read_array(&mut input)?);
        let count = u64::from_le_bytes(read_array(&mut input)?);
        let name_len = read_u64(&mut input)? as usize;
        if name_len > 4096 {
            return Err(TraceError::Corrupt(format!(
                "implausible name length {name_len}"
            )));
        }
        let mut name_bytes = vec![0u8; name_len];
        read_exact(&mut input, &mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| TraceError::Corrupt("workload name is not UTF-8".to_string()))?;
        Ok(TraceReader {
            input: ChecksumRead {
                inner: input,
                checksum: FNV_OFFSET,
            },
            header: TraceHeader {
                name,
                seed,
                fingerprint,
                requested_len,
                count,
            },
            state: CodecState::new(),
            next_seq: 0,
            verified: false,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Decodes the next record, or returns `Ok(None)` after the last one.
    ///
    /// The trailing checksum is verified *as part of returning the final record* (not
    /// lazily on the read past the end), so a consumer that pulls exactly
    /// [`TraceHeader::count`] records — like the streaming CPU replay — still sees
    /// corruption as an error rather than completing on a damaged file.
    pub fn next_record(&mut self) -> Result<Option<DynInst>, TraceError> {
        if self.next_seq >= self.header.count {
            self.verify_trailer()?;
            return Ok(None);
        }
        let inst = decode_inst(&mut self.input, &mut self.state, self.next_seq)?;
        self.next_seq += 1;
        if self.next_seq == self.header.count {
            self.verify_trailer()?;
        }
        Ok(Some(inst))
    }

    fn verify_trailer(&mut self) -> Result<(), TraceError> {
        if !self.verified {
            let computed = self.input.checksum;
            let stored = u64::from_le_bytes(read_array(&mut self.input.inner)?);
            if computed != stored {
                return Err(TraceError::ChecksumMismatch { computed, stored });
            }
            self.verified = true;
        }
        Ok(())
    }

    /// Materializes every remaining record into a [`Program`] (verifying the
    /// checksum).
    pub fn read_program(mut self) -> Result<Program, TraceError> {
        let mut trace = Vec::with_capacity((self.header.count - self.next_seq) as usize);
        while let Some(inst) = self.next_record()? {
            trace.push(inst);
        }
        Ok(Program::new(self.header.name.clone(), trace))
    }
}

impl<R: Read> InstStream for TraceReader<R> {
    fn name(&self) -> &str {
        &self.header.name
    }

    fn len(&self) -> usize {
        self.header.count as usize
    }

    /// Streaming replay interface.
    ///
    /// # Panics
    ///
    /// Panics if the trace turns out to be corrupt mid-stream — a streaming consumer
    /// (the CPU model) has no way to recover from a truncated instruction source.
    fn next_inst(&mut self) -> Option<DynInst> {
        self.next_record()
            .unwrap_or_else(|e| panic!("corrupt trace during streaming replay: {e}"))
    }
}

fn read_exact(input: &mut impl Read, buf: &mut [u8]) -> Result<(), TraceError> {
    input.read_exact(buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => {
            TraceError::Corrupt("unexpected end of trace".to_string())
        }
        _ => TraceError::Io(e),
    })
}

fn read_array<const N: usize>(input: &mut impl Read) -> Result<[u8; N], TraceError> {
    let mut buf = [0u8; N];
    read_exact(input, &mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write_program_to_vec;
    use svw_workloads::WorkloadProfile;

    fn sample_bytes() -> (Vec<u8>, Program) {
        let profile = WorkloadProfile::quicktest();
        let program = profile.generate(1_500, 3);
        let bytes = write_program_to_vec(&program, 1_500, 3, profile.fingerprint());
        (bytes, program)
    }

    #[test]
    fn header_fields_round_trip() {
        let (bytes, program) = sample_bytes();
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        let h = reader.header();
        assert_eq!(h.name, "quicktest");
        assert_eq!(h.seed, 3);
        assert_eq!(h.fingerprint, WorkloadProfile::quicktest().fingerprint());
        assert_eq!(h.requested_len, 1_500);
        assert_eq!(h.count, program.len() as u64);
    }

    #[test]
    fn materialized_read_matches_source() {
        let (bytes, program) = sample_bytes();
        let replayed = TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_program()
            .unwrap();
        assert_eq!(replayed.name(), program.name());
        assert_eq!(replayed.instructions(), program.instructions());
    }

    #[test]
    fn streaming_read_matches_source() {
        let (bytes, program) = sample_bytes();
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(InstStream::len(&reader), program.len());
        for expected in program.instructions() {
            assert_eq!(reader.next_inst().as_ref(), Some(expected));
        }
        assert!(reader.next_inst().is_none());
        assert!(reader.next_inst().is_none(), "stream stays exhausted");
    }

    #[test]
    fn trailer_corruption_is_caught_on_the_final_record() {
        // A streaming consumer pulls exactly `count` records and never reads past the
        // end — the checksum must still be enforced on that path.
        let (mut bytes, program) = sample_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // inside the stored checksum trailer
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        let mut outcome = Ok(None);
        for _ in 0..program.len() {
            outcome = reader.next_record();
            if outcome.is_err() {
                break;
            }
        }
        assert!(matches!(outcome, Err(TraceError::ChecksumMismatch { .. })));
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            TraceReader::new(&b"NOPE////"[..]),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn bad_version_is_rejected() {
        let (mut bytes, _) = sample_bytes();
        bytes[4] = 0xFF;
        assert!(matches!(
            TraceReader::new(bytes.as_slice()),
            Err(TraceError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn flipped_record_byte_fails_the_checksum() {
        let (mut bytes, _) = sample_bytes();
        // Flip a byte in the record region (well past the header) in a way that keeps
        // the stream structurally decodable often enough; whether decoding or the
        // checksum catches it, the read must fail.
        let idx = bytes.len() - 16;
        bytes[idx] ^= 0x01;
        assert!(TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_program()
            .is_err());
    }

    #[test]
    fn truncated_trace_is_corrupt() {
        let (bytes, _) = sample_bytes();
        let cut = &bytes[..bytes.len() / 2];
        assert!(TraceReader::new(cut).unwrap().read_program().is_err());
    }
}
