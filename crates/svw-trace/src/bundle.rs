//! Indexed trace bundles (`.svwtb`): every `.svwt` file a sweep plan needs, packed
//! into one self-describing artifact keyed by workload-profile fingerprints.
//!
//! A distributed sweep used to make every shard regenerate (or re-capture) the
//! traces its cells need, so trace production dominated cold runs. A bundle turns
//! that into a one-time packing step: `svwsim pack-traces` captures each unique
//! `(fingerprint, trace_len, seed)` trace once and writes this container; shards
//! then read traces straight out of the bundle (`--trace-bundle`) and generate
//! nothing.
//!
//! # The `.svwtb` format (version 1)
//!
//! All fixed-width fields are little-endian; `varint` is LEB128 as in `.svwt`.
//!
//! ```text
//! header:
//!   magic        4 bytes   "SVWB"
//!   version      u16       1
//!   flags        u16       0 (reserved)
//!   count        u64       number of index entries
//! index (count entries, in pack order):
//!   fingerprint  u64       WorkloadProfile::fingerprint() of the trace's profile
//!   trace_len    u64       requested dynamic length
//!   seed         u64       workload-generation seed
//!   offset       u64       byte offset of the entry's .svwt image from file start
//!   len          u64       byte length of the .svwt image
//!   name_len     varint    followed by `name_len` bytes of UTF-8 workload name
//! index checksum u64       FNV-1a over every index byte (entries only)
//! blobs:
//!   count complete `.svwt` images, each individually checksummed by its own format
//! ```
//!
//! Entries are keyed exactly like the on-disk [`TraceCache`](crate::TraceCache) —
//! `(fingerprint, trace_len, seed)` — so a bundle built from one binary's workload
//! definitions refuses to serve a binary whose profiles have drifted: the lookup key
//! simply misses. Each blob is a complete `.svwt` image whose own header/checksum
//! are re-validated on read, so a truncated or corrupted bundle entry surfaces as a
//! [`TraceError`] rather than bad data.

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;

use svw_isa::Program;
use svw_workloads::{BundleManifest, TraceKey};

use crate::varint::{read_u64 as read_varint, write_u64 as write_varint};
use crate::{
    fnv1a, read_program_from_slice, write_program_to_vec, TraceCache, TraceError, FNV_OFFSET,
};

/// The four magic bytes opening every `.svwtb` bundle.
pub const BUNDLE_MAGIC: [u8; 4] = *b"SVWB";

/// The current bundle format version.
pub const BUNDLE_FORMAT_VERSION: u16 = 1;

/// Conventional file extension for trace bundles.
pub const BUNDLE_FILE_EXTENSION: &str = "svwtb";

/// One parsed index entry.
#[derive(Clone, Debug)]
struct IndexEntry {
    offset: u64,
    len: u64,
}

/// What [`pack_bundle`] did: how many traces were packed, and where each came from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackStats {
    /// Unique traces written into the bundle.
    pub traces: usize,
    /// Traces served by the on-disk cache (no generation needed).
    pub from_cache: usize,
    /// Traces generated (and captured into the cache when one was given).
    pub generated: usize,
    /// Total bundle size in bytes.
    pub bytes: u64,
}

/// One trace generated + encoded off the writer thread, awaiting its in-order
/// commit to the bundle file.
struct EncodedBlob {
    bytes: Vec<u8>,
    from_cache: bool,
}

/// Shared state between the encode workers and the in-order committer.
struct CommitQueue {
    /// Encoded blobs keyed by manifest index, not yet written.
    ready: HashMap<usize, EncodedBlob>,
    /// Number of blobs committed to the file so far (== next index to write).
    written: usize,
    /// Set on the first error anywhere; everyone drains and bails.
    poisoned: bool,
}

/// Captures every trace in `manifest` into a `.svwtb` bundle at `path`,
/// generating and encoding up to `jobs` traces concurrently (0 = all available
/// parallelism, as in the sweep executor).
///
/// Traces are acquired through `cache` when one is given (hits skip generation and
/// misses are captured for future runs) and generated directly otherwise. The bundle
/// is written to a temporary file and atomically renamed into place.
///
/// Packing streams: an index entry's size depends only on its key and name — never
/// on the blob it points at — so the packer reserves the index region up front,
/// writes each encoded trace straight to the file, then seeks back and fills in the
/// index with the recorded offsets. Workers claim manifest entries from a shared
/// queue and hand encoded blobs to the writer, which commits them strictly in
/// manifest order — the output is byte-identical at every job count. Workers stall
/// once they run more than `jobs` entries ahead of the writer, so peak memory is
/// bounded by O(`jobs`) encoded blobs, however large the manifest.
pub fn pack_bundle(
    manifest: &BundleManifest,
    cache: Option<&TraceCache>,
    path: impl AsRef<Path>,
    jobs: usize,
) -> Result<PackStats, TraceError> {
    let path = path.as_ref();
    let mut stats = PackStats::default();
    let entries = manifest.entries();
    let auto = thread::available_parallelism().map_or(1, |n| n.get());
    let workers = if jobs == 0 { auto } else { jobs }.clamp(1, entries.len().max(1));

    // The index region's size is known before any trace is generated.
    let header_len = 4 + 2 + 2 + 8; // magic + version + flags + count
    let mut dry = Vec::new();
    for entry in entries {
        write_index_entry(&mut dry, &entry.profile.name, &entry.key, 0, 0)?;
    }
    let blobs_start = (header_len + dry.len() + 8) as u64; // + index checksum

    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = (|| -> Result<(), TraceError> {
        let mut file = std::io::BufWriter::new(fs::File::create(&tmp)?);
        file.write_all(&BUNDLE_MAGIC)?;
        file.write_all(&BUNDLE_FORMAT_VERSION.to_le_bytes())?;
        file.write_all(&0u16.to_le_bytes())?;
        file.write_all(&(manifest.len() as u64).to_le_bytes())?;
        file.seek(SeekFrom::Start(blobs_start))?;

        let next = AtomicUsize::new(0);
        let queue = Mutex::new(CommitQueue {
            ready: HashMap::new(),
            written: 0,
            poisoned: false,
        });
        let progress = Condvar::new();
        // The first worker error, preserved verbatim; writer IO errors are
        // returned directly and take precedence only if no worker failed.
        let worker_err: Mutex<Option<TraceError>> = Mutex::new(None);
        fn lock<'q>(m: &'q Mutex<CommitQueue>) -> std::sync::MutexGuard<'q, CommitQueue> {
            m.lock().unwrap_or_else(|e| e.into_inner())
        }

        let mut index = Vec::with_capacity(dry.len());
        let mut offset = blobs_start;
        thread::scope(|s| -> Result<(), TraceError> {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= entries.len() {
                        return;
                    }
                    // Throttle: never run more than `workers` blobs ahead of
                    // the committer, bounding peak memory.
                    {
                        let mut q = lock(&queue);
                        while !q.poisoned && i >= q.written + workers {
                            q = progress.wait(q).unwrap_or_else(|e| e.into_inner());
                        }
                        if q.poisoned {
                            return;
                        }
                    }
                    let entry = &entries[i];
                    let trace_len = entry.key.trace_len as usize;
                    let seed = entry.key.seed;
                    let encoded = (|| -> Result<EncodedBlob, TraceError> {
                        let (program, from_cache) = match cache {
                            Some(cache) => {
                                let (program, outcome) =
                                    cache.get_or_generate(&entry.profile, trace_len, seed)?;
                                (program, outcome.is_hit())
                            }
                            None => (entry.profile.generate(trace_len, seed), false),
                        };
                        let bytes =
                            write_program_to_vec(&program, trace_len, seed, entry.key.fingerprint);
                        Ok(EncodedBlob { bytes, from_cache })
                    })();
                    match encoded {
                        Ok(blob) => {
                            let mut q = lock(&queue);
                            q.ready.insert(i, blob);
                            progress.notify_all();
                        }
                        Err(e) => {
                            let mut first = worker_err.lock().unwrap_or_else(|e| e.into_inner());
                            first.get_or_insert(e);
                            drop(first);
                            lock(&queue).poisoned = true;
                            progress.notify_all();
                            return;
                        }
                    }
                });
            }

            // Commit blobs strictly in manifest order on this thread.
            for (i, entry) in entries.iter().enumerate() {
                let blob = {
                    let mut q = lock(&queue);
                    loop {
                        if let Some(blob) = q.ready.remove(&i) {
                            q.written += 1;
                            progress.notify_all();
                            break Some(blob);
                        }
                        if q.poisoned {
                            break None;
                        }
                        q = progress.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                };
                let Some(blob) = blob else {
                    return Ok(()); // a worker failed; its error surfaces below
                };
                let io = (|| -> Result<(), TraceError> {
                    file.write_all(&blob.bytes)?;
                    write_index_entry(
                        &mut index,
                        &entry.profile.name,
                        &entry.key,
                        offset,
                        blob.bytes.len() as u64,
                    )
                })();
                if let Err(e) = io {
                    lock(&queue).poisoned = true;
                    progress.notify_all();
                    return Err(e);
                }
                offset += blob.bytes.len() as u64;
                stats.traces += 1;
                if blob.from_cache {
                    stats.from_cache += 1;
                } else {
                    stats.generated += 1;
                }
            }
            Ok(())
        })?;
        if let Some(e) = worker_err.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(e);
        }
        debug_assert_eq!(
            index.len(),
            dry.len(),
            "index size must not depend on blobs"
        );

        // Fill in the reserved index region now that the offsets are known.
        file.seek(SeekFrom::Start(header_len as u64))?;
        file.write_all(&index)?;
        file.write_all(&fnv1a(FNV_OFFSET, &index).to_le_bytes())?;
        file.flush()?;
        Ok(())
    })();
    match result {
        Ok(()) => fs::rename(&tmp, path)?,
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
    }
    stats.bytes = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    Ok(stats)
}

/// Index entries use fixed-width key fields so their size is computable from the
/// name alone; the offset/len fields are filled in as the blobs stream out.
fn write_index_entry(
    out: &mut Vec<u8>,
    name: &str,
    key: &TraceKey,
    offset: u64,
    len: u64,
) -> Result<(), TraceError> {
    out.write_all(&key.fingerprint.to_le_bytes())?;
    out.write_all(&key.trace_len.to_le_bytes())?;
    out.write_all(&key.seed.to_le_bytes())?;
    out.write_all(&offset.to_le_bytes())?;
    out.write_all(&len.to_le_bytes())?;
    write_varint(out, name.len() as u64)?;
    out.write_all(name.as_bytes())?;
    Ok(())
}

/// A read-only, thread-safe view of a `.svwtb` bundle: the index is parsed (and
/// checksummed) once at open; [`TraceBundle::get`] then serves any contained trace
/// with a single seek + read, re-validating the blob's own `.svwt` checksum.
#[derive(Debug)]
pub struct TraceBundle {
    path: PathBuf,
    file: Mutex<fs::File>,
    index: HashMap<TraceKey, IndexEntry>,
    /// Workload names in pack order (diagnostics; `svwsim` lists bundle contents).
    names: Vec<(String, TraceKey)>,
}

impl TraceBundle {
    /// Opens the bundle at `path`, parsing and validating its index.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref().to_path_buf();
        let mut file = fs::File::open(&path)?;
        let mut magic = [0u8; 4];
        file.read_exact(&mut magic)?;
        if magic != BUNDLE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut u16buf = [0u8; 2];
        file.read_exact(&mut u16buf)?;
        let version = u16::from_le_bytes(u16buf);
        if version != BUNDLE_FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        file.read_exact(&mut u16buf)?; // flags (reserved)
        let mut u64buf = [0u8; 8];
        file.read_exact(&mut u64buf)?;
        let count = u64::from_le_bytes(u64buf);

        let mut index = HashMap::new();
        let mut names = Vec::new();
        let mut index_bytes = Vec::new();
        for _ in 0..count {
            let mut fixed = [0u8; 40];
            file.read_exact(&mut fixed)?;
            index_bytes.extend_from_slice(&fixed);
            let word = |i: usize| u64::from_le_bytes(fixed[i * 8..(i + 1) * 8].try_into().unwrap());
            let key = TraceKey {
                fingerprint: word(0),
                trace_len: word(1),
                seed: word(2),
            };
            let entry = IndexEntry {
                offset: word(3),
                len: word(4),
            };
            // Re-encode the varint name length so the checksum covers exactly the
            // bytes the packer wrote.
            let name_len = {
                let mut probe = ChecksumTap {
                    inner: &mut file,
                    sink: &mut index_bytes,
                };
                read_varint(&mut probe)? as usize
            };
            if name_len > 4096 {
                return Err(TraceError::Corrupt(format!(
                    "bundle index name length {name_len} is implausible"
                )));
            }
            let mut name = vec![0u8; name_len];
            file.read_exact(&mut name)?;
            index_bytes.extend_from_slice(&name);
            let name = String::from_utf8(name)
                .map_err(|_| TraceError::Corrupt("bundle index name is not UTF-8".to_string()))?;
            names.push((name, key.clone()));
            index.insert(key, entry);
        }
        file.read_exact(&mut u64buf)?;
        let stored = u64::from_le_bytes(u64buf);
        let computed = fnv1a(FNV_OFFSET, &index_bytes);
        if stored != computed {
            return Err(TraceError::ChecksumMismatch { computed, stored });
        }
        Ok(TraceBundle {
            path,
            file: Mutex::new(file),
            index,
            names,
        })
    }

    /// The bundle file this view reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of traces in the bundle.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the bundle holds no traces.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether the bundle holds a trace for `key`.
    pub fn contains(&self, key: &TraceKey) -> bool {
        self.index.contains_key(key)
    }

    /// The `(workload name, key)` pairs in pack order.
    pub fn entries(&self) -> &[(String, TraceKey)] {
        &self.names
    }

    /// Reads the trace for `key`, or `None` when the bundle does not contain it.
    ///
    /// The blob's `.svwt` header and checksum are re-validated, and its identity
    /// fields must agree with the index key; any mismatch is a [`TraceError`].
    pub fn get(&self, key: &TraceKey) -> Result<Option<Program>, TraceError> {
        self.get_metered(key)
            .map(|found| found.map(|(program, _)| program))
    }

    /// [`TraceBundle::get`] plus a [`crate::FetchMeter`] reporting the blob size
    /// and decode time. The returned program is unaffected by the metering.
    pub fn get_metered(
        &self,
        key: &TraceKey,
    ) -> Result<Option<(Program, crate::FetchMeter)>, TraceError> {
        let Some(entry) = self.index.get(key) else {
            return Ok(None);
        };
        let decode_start = std::time::Instant::now();
        let bytes = {
            let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
            file.seek(SeekFrom::Start(entry.offset))?;
            let mut bytes = vec![0u8; entry.len as usize];
            file.read_exact(&mut bytes)?;
            bytes
        };
        let reader = crate::TraceReader::new(bytes.as_slice())?;
        let h = reader.header();
        if h.fingerprint != key.fingerprint
            || h.seed != key.seed
            || h.requested_len != key.trace_len
        {
            return Err(TraceError::Corrupt(format!(
                "bundle entry identity mismatch: index says fingerprint {:016x} len {} seed {}, \
                 blob says fingerprint {:016x} len {} seed {}",
                key.fingerprint, key.trace_len, key.seed, h.fingerprint, h.requested_len, h.seed
            )));
        }
        let program = read_program_from_slice(&bytes)?;
        let meter = crate::FetchMeter {
            bytes_read: entry.len,
            decode: decode_start.elapsed(),
            generate: std::time::Duration::ZERO,
        };
        Ok(Some((program, meter)))
    }
}

/// Tees every byte read through to a checksum sink (used to capture the exact
/// varint bytes of index name lengths).
struct ChecksumTap<'a, R: Read> {
    inner: &'a mut R,
    sink: &'a mut Vec<u8>,
}

impl<R: Read> Read for ChecksumTap<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.sink.extend_from_slice(&buf[..n]);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svw_workloads::WorkloadProfile;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "svw-bundle-test-{tag}-{}.{BUNDLE_FILE_EXTENSION}",
            std::process::id()
        ))
    }

    fn tiny_manifest() -> BundleManifest {
        let mut m = BundleManifest::new();
        m.add_matrix(
            &[
                WorkloadProfile::quicktest(),
                WorkloadProfile::by_name("gzip").unwrap(),
            ],
            800,
            &[1, 2],
        );
        m
    }

    #[test]
    fn pack_then_get_round_trips_every_trace() {
        let path = temp_path("roundtrip");
        let manifest = tiny_manifest();
        let stats = pack_bundle(&manifest, None, &path, 4).unwrap();
        assert_eq!(stats.traces, 4);
        assert_eq!(stats.generated, 4);
        assert!(stats.bytes > 0);

        let bundle = TraceBundle::open(&path).unwrap();
        assert_eq!(bundle.len(), 4);
        for entry in manifest.entries() {
            let program = bundle.get(&entry.key).unwrap().expect("trace is bundled");
            let direct = entry
                .profile
                .generate(entry.key.trace_len as usize, entry.key.seed);
            assert_eq!(program.instructions(), direct.instructions());
        }
        // A key the bundle does not hold is a clean miss, not an error.
        let other = TraceKey {
            fingerprint: 0xBAD,
            trace_len: 800,
            seed: 1,
        };
        assert!(bundle.get(&other).unwrap().is_none());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn packing_is_deterministic_at_every_job_count() {
        let a = temp_path("det-a");
        let manifest = tiny_manifest();
        pack_bundle(&manifest, None, &a, 1).unwrap();
        let reference = fs::read(&a).unwrap();
        // Parallel packing commits in manifest order: byte-identical output
        // whatever the job count (including more jobs than entries).
        for jobs in [2, 3, 8] {
            let b = temp_path(&format!("det-j{jobs}"));
            pack_bundle(&manifest, None, &b, jobs).unwrap();
            assert_eq!(reference, fs::read(&b).unwrap(), "jobs={jobs}");
            let _ = fs::remove_file(&b);
        }
        let _ = fs::remove_file(&a);
    }

    #[test]
    fn pack_uses_the_cache_when_given() {
        let dir = std::env::temp_dir().join(format!("svw-bundle-cache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = TraceCache::new(&dir).unwrap();
        let path = temp_path("cached");
        let manifest = tiny_manifest();
        let cold = pack_bundle(&manifest, Some(&cache), &path, 2).unwrap();
        assert_eq!((cold.generated, cold.from_cache), (4, 0));
        let warm = pack_bundle(&manifest, Some(&cache), &path, 2).unwrap();
        assert_eq!((warm.generated, warm.from_cache), (0, 4));
        let _ = fs::remove_file(&path);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_is_rejected() {
        let path = temp_path("corrupt-index");
        pack_bundle(&tiny_manifest(), None, &path, 1).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte inside the index region (right after the 16-byte header).
        bytes[20] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(TraceBundle::open(&path).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_blob_is_rejected_at_get() {
        let path = temp_path("corrupt-blob");
        let manifest = tiny_manifest();
        pack_bundle(&manifest, None, &path, 1).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let idx = bytes.len() - 12;
        bytes[idx] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let bundle = TraceBundle::open(&path).expect("index is intact");
        let last = manifest.entries().last().unwrap();
        assert!(bundle.get(&last.key).is_err(), "blob corruption surfaces");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn non_bundle_file_is_bad_magic() {
        let path = temp_path("not-a-bundle");
        fs::write(&path, b"definitely not a bundle").unwrap();
        assert!(matches!(
            TraceBundle::open(&path),
            Err(TraceError::BadMagic)
        ));
        let _ = fs::remove_file(&path);
    }
}
