//! The on-disk trace cache.

use std::fs;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use svw_isa::Program;
use svw_workloads::WorkloadProfile;

use crate::{write_program, TraceError, TraceReader, FILE_EXTENSION};

/// Whether a cache request was served from disk or had to generate (and capture) the
/// trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The trace was read back from a previously captured file.
    Hit,
    /// The trace was generated and a new file was captured.
    Miss,
}

impl CacheOutcome {
    /// Returns `true` for [`CacheOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        self == CacheOutcome::Hit
    }
}

/// Timing and volume measurements for one trace acquisition.
///
/// Filled in by the metered acquisition paths ([`TraceCache::get_or_generate_metered`],
/// [`crate::TraceBundle::get_metered`]); a plain generation reports only
/// `generate`. Durations not applicable to the path taken stay zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchMeter {
    /// Bytes read from disk (the `.svwt` file or bundle blob); 0 when generated.
    pub bytes_read: u64,
    /// Time spent decoding the on-disk representation into a [`Program`].
    pub decode: std::time::Duration,
    /// Time spent generating the trace from its workload profile (miss path).
    pub generate: std::time::Duration,
}

/// A directory of `.svwt` files keyed by `(profile fingerprint, trace length, seed)`.
///
/// The key lives in the file name, so lookups are a single `open`; the profile
/// fingerprint covers every behavioural knob, so editing a profile in source
/// automatically misses (and re-captures) rather than replaying a stale trace. Files
/// are written to a unique temporary name and atomically renamed into place, which
/// makes concurrent populations (e.g. the parallel experiment runner, or two
/// processes) safe: the worst case is the same trace being generated twice.
///
/// A corrupt or mismatching cache entry is treated as a miss and silently
/// re-captured — the cache is a pure performance artifact and never changes results.
#[derive(Clone, Debug)]
pub struct TraceCache {
    dir: PathBuf,
}

/// Distinguishes temporary files created by concurrent captures within one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl TraceCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(TraceCache { dir })
    }

    /// The default cache location: `$SVW_TRACE_CACHE` if set, else
    /// `$HOME/.cache/svw/traces`, else a directory under the system temp dir.
    pub fn default_dir() -> PathBuf {
        if let Some(d) = std::env::var_os("SVW_TRACE_CACHE") {
            return d.into();
        }
        if let Some(h) = std::env::var_os("HOME") {
            return Path::new(&h).join(".cache").join("svw").join("traces");
        }
        std::env::temp_dir().join("svw-traces")
    }

    /// Opens the default cache (see [`TraceCache::default_dir`]).
    pub fn open_default() -> std::io::Result<Self> {
        Self::new(Self::default_dir())
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a given `(profile, trace_len, seed)` key maps to.
    pub fn path_for(&self, profile: &WorkloadProfile, trace_len: usize, seed: u64) -> PathBuf {
        self.dir.join(format!(
            "{}-l{trace_len}-s{seed}-{:016x}.{FILE_EXTENSION}",
            profile.name,
            profile.fingerprint()
        ))
    }

    /// Returns the cached trace for the key, generating and capturing it on a miss.
    /// The returned program is identical to `profile.generate(trace_len, seed)` either
    /// way.
    pub fn get_or_generate(
        &self,
        profile: &WorkloadProfile,
        trace_len: usize,
        seed: u64,
    ) -> Result<(Program, CacheOutcome), TraceError> {
        self.get_or_generate_metered(profile, trace_len, seed)
            .map(|(program, outcome, _)| (program, outcome))
    }

    /// [`TraceCache::get_or_generate`] plus a [`FetchMeter`] describing how long
    /// the decode (hit) or generation (miss) took and how many bytes were read.
    /// The returned program is unaffected by the metering.
    pub fn get_or_generate_metered(
        &self,
        profile: &WorkloadProfile,
        trace_len: usize,
        seed: u64,
    ) -> Result<(Program, CacheOutcome, FetchMeter), TraceError> {
        let path = self.path_for(profile, trace_len, seed);
        let decode_start = std::time::Instant::now();
        if let Some(program) = self.try_read(&path, profile, trace_len, seed) {
            let meter = FetchMeter {
                bytes_read: fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
                decode: decode_start.elapsed(),
                generate: std::time::Duration::ZERO,
            };
            return Ok((program, CacheOutcome::Hit, meter));
        }
        let (program, generate) = profile.generate_timed(trace_len, seed);
        self.capture(&path, &program, trace_len, seed, profile.fingerprint())?;
        let meter = FetchMeter {
            bytes_read: 0,
            decode: std::time::Duration::ZERO,
            generate,
        };
        Ok((program, CacheOutcome::Miss, meter))
    }

    /// Opens a streaming reader for the key if a valid cached file exists.
    pub fn open_streaming(
        &self,
        profile: &WorkloadProfile,
        trace_len: usize,
        seed: u64,
    ) -> Option<TraceReader<std::io::BufReader<fs::File>>> {
        let path = self.path_for(profile, trace_len, seed);
        let reader = TraceReader::open(&path).ok()?;
        let h = reader.header();
        (h.fingerprint == profile.fingerprint()
            && h.seed == seed
            && h.requested_len == trace_len as u64)
            .then_some(reader)
    }

    fn try_read(
        &self,
        path: &Path,
        profile: &WorkloadProfile,
        trace_len: usize,
        seed: u64,
    ) -> Option<Program> {
        let reader = TraceReader::open(path).ok()?;
        let h = reader.header();
        if h.fingerprint != profile.fingerprint()
            || h.seed != seed
            || h.requested_len != trace_len as u64
        {
            return None;
        }
        reader.read_program().ok()
    }

    fn capture(
        &self,
        path: &Path,
        program: &Program,
        trace_len: usize,
        seed: u64,
        fingerprint: u64,
    ) -> Result<(), TraceError> {
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let file = BufWriter::new(fs::File::create(&tmp)?);
        let result = write_program(file, program, trace_len, seed, fingerprint);
        match result {
            Ok(()) => {
                fs::rename(&tmp, path)?;
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> TraceCache {
        let dir =
            std::env::temp_dir().join(format!("svw-trace-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TraceCache::new(dir).unwrap()
    }

    #[test]
    fn miss_then_hit_returns_identical_programs() {
        let cache = temp_cache("hit");
        let profile = WorkloadProfile::quicktest();
        let (a, out_a) = cache.get_or_generate(&profile, 1_200, 5).unwrap();
        assert_eq!(out_a, CacheOutcome::Miss);
        let (b, out_b) = cache.get_or_generate(&profile, 1_200, 5).unwrap();
        assert_eq!(out_b, CacheOutcome::Hit);
        assert_eq!(a.instructions(), b.instructions());
        assert_eq!(a.instructions(), profile.generate(1_200, 5).instructions());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn distinct_keys_get_distinct_files() {
        let cache = temp_cache("keys");
        let p = WorkloadProfile::quicktest();
        let a = cache.path_for(&p, 1000, 1);
        let b = cache.path_for(&p, 1000, 2);
        let c = cache.path_for(&p, 2000, 1);
        let mut q = p.clone();
        q.chase_frac += 0.01;
        let d = cache.path_for(&q, 1000, 1);
        let all = [&a, &b, &c, &d];
        for (i, x) in all.iter().enumerate() {
            for y in &all[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn profile_edit_invalidates_the_entry() {
        let cache = temp_cache("invalidate");
        let p = WorkloadProfile::quicktest();
        let (_, first) = cache.get_or_generate(&p, 900, 2).unwrap();
        assert_eq!(first, CacheOutcome::Miss);
        let mut edited = p.clone();
        edited.redundancy_frac += 0.05;
        let (_, second) = cache.get_or_generate(&edited, 900, 2).unwrap();
        assert_eq!(
            second,
            CacheOutcome::Miss,
            "different fingerprint, different file"
        );
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entry_is_recaptured() {
        let cache = temp_cache("corrupt");
        let p = WorkloadProfile::quicktest();
        let (_, _) = cache.get_or_generate(&p, 800, 3).unwrap();
        let path = cache.path_for(&p, 800, 3);
        let mut bytes = fs::read(&path).unwrap();
        let idx = bytes.len() - 12;
        bytes[idx] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (program, outcome) = cache.get_or_generate(&p, 800, 3).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(program.instructions(), p.generate(800, 3).instructions());
        // And the entry is healthy again.
        let (_, again) = cache.get_or_generate(&p, 800, 3).unwrap();
        assert_eq!(again, CacheOutcome::Hit);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn streaming_open_validates_the_key() {
        let cache = temp_cache("stream");
        let p = WorkloadProfile::quicktest();
        assert!(cache.open_streaming(&p, 700, 4).is_none(), "cold cache");
        let (_, _) = cache.get_or_generate(&p, 700, 4).unwrap();
        assert!(cache.open_streaming(&p, 700, 4).is_some());
        assert!(cache.open_streaming(&p, 700, 5).is_none(), "wrong seed");
        let _ = fs::remove_dir_all(cache.dir());
    }
}
