//! Streaming trace capture.

use std::io::{self, Write};

use svw_isa::{DynInst, Program};

use crate::codec::{encode_inst, CodecState};
use crate::varint::write_u64;
use crate::{fnv1a, FNV_OFFSET, FORMAT_VERSION, MAGIC};

/// Wraps a writer, folding every written byte into an FNV-1a checksum.
struct ChecksumWrite<W: Write> {
    inner: W,
    checksum: u64,
}

impl<W: Write> Write for ChecksumWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.checksum = fnv1a(self.checksum, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Streaming `.svwt` writer: construct with the trace's metadata, feed instructions in
/// sequence order, then call [`TraceWriter::finish`] to write the checksum trailer.
pub struct TraceWriter<W: Write> {
    out: ChecksumWrite<W>,
    state: CodecState,
    expected: u64,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header for a trace of exactly `count` instructions named `name`,
    /// generated with `seed` from a profile with `fingerprint` (`requested_len` is the
    /// instruction count that was asked of the generator; the generator may overshoot
    /// slightly to finish its final loop iteration).
    pub fn new(
        mut out: W,
        name: &str,
        count: u64,
        requested_len: u64,
        seed: u64,
        fingerprint: u64,
    ) -> io::Result<Self> {
        out.write_all(&MAGIC)?;
        out.write_all(&FORMAT_VERSION.to_le_bytes())?;
        out.write_all(&0u16.to_le_bytes())?; // flags (reserved)
        out.write_all(&seed.to_le_bytes())?;
        out.write_all(&fingerprint.to_le_bytes())?;
        out.write_all(&requested_len.to_le_bytes())?;
        out.write_all(&count.to_le_bytes())?;
        write_u64(&mut out, name.len() as u64)?;
        out.write_all(name.as_bytes())?;
        Ok(TraceWriter {
            out: ChecksumWrite {
                inner: out,
                checksum: FNV_OFFSET,
            },
            state: CodecState::new(),
            expected: count,
            written: 0,
        })
    }

    /// Appends one instruction.
    ///
    /// # Panics
    ///
    /// Panics if more than `count` instructions are written, if `inst.seq` is not the
    /// next sequence number, or if a memory instruction is unresolved.
    pub fn write_inst(&mut self, inst: &DynInst) -> io::Result<()> {
        assert!(
            self.written < self.expected,
            "trace writer given more instructions than the declared count"
        );
        assert_eq!(
            inst.seq, self.written,
            "instructions must be written in dense sequence order"
        );
        encode_inst(&mut self.out, &mut self.state, inst)?;
        self.written += 1;
        Ok(())
    }

    /// Writes the checksum trailer and returns the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` instructions were written.
    pub fn finish(self) -> io::Result<W> {
        assert_eq!(
            self.written, self.expected,
            "trace writer closed before the declared count was written"
        );
        let checksum = self.out.checksum;
        let mut inner = self.out.inner;
        inner.write_all(&checksum.to_le_bytes())?;
        inner.flush()?;
        Ok(inner)
    }
}

/// Serializes a whole resolved [`Program`] (the common capture path).
pub fn write_program(
    out: impl Write,
    program: &Program,
    requested_len: usize,
    seed: u64,
    fingerprint: u64,
) -> io::Result<()> {
    let mut w = TraceWriter::new(
        out,
        program.name(),
        program.len() as u64,
        requested_len as u64,
        seed,
        fingerprint,
    )?;
    for inst in program.instructions() {
        w.write_inst(inst)?;
    }
    w.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use svw_isa::{ArchReg, ArchState, InstKind};

    fn tiny_program() -> Program {
        let mut trace = vec![
            DynInst::new(
                0,
                0,
                InstKind::LoadImm {
                    dst: ArchReg::new(1),
                    imm: 7,
                },
            ),
            DynInst::new(1, 4, InstKind::Nop),
        ];
        ArchState::new().execute_all(&mut trace);
        Program::new("tiny", trace)
    }

    #[test]
    fn header_layout_is_stable() {
        let mut buf = Vec::new();
        write_program(&mut buf, &tiny_program(), 2, 9, 0xABCD).unwrap();
        assert_eq!(&buf[0..4], b"SVWT");
        assert_eq!(u16::from_le_bytes([buf[4], buf[5]]), FORMAT_VERSION);
        assert_eq!(u16::from_le_bytes([buf[6], buf[7]]), 0);
        assert_eq!(u64::from_le_bytes(buf[8..16].try_into().unwrap()), 9);
        assert_eq!(u64::from_le_bytes(buf[16..24].try_into().unwrap()), 0xABCD);
        assert_eq!(u64::from_le_bytes(buf[24..32].try_into().unwrap()), 2); // requested
        assert_eq!(u64::from_le_bytes(buf[32..40].try_into().unwrap()), 2); // count
        assert_eq!(buf[40], 4); // name length varint
        assert_eq!(&buf[41..45], b"tiny");
    }

    #[test]
    #[should_panic(expected = "dense sequence order")]
    fn out_of_order_write_panics() {
        let mut w = TraceWriter::new(Vec::new(), "x", 2, 2, 0, 0).unwrap();
        let mut inst = DynInst::new(1, 0, InstKind::Nop);
        inst.seq = 1;
        let _ = w.write_inst(&inst);
    }

    #[test]
    #[should_panic(expected = "before the declared count")]
    fn short_write_panics_at_finish() {
        let w = TraceWriter::new(Vec::new(), "x", 2, 2, 0, 0).unwrap();
        let _ = w.finish();
    }
}
