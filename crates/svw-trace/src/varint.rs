//! LEB128 varints and zigzag-mapped signed varints over `io` streams.

use std::io::{Read, Write};

use crate::TraceError;

/// Maximum bytes a 64-bit LEB128 varint may occupy.
const MAX_VARINT_BYTES: usize = 10;

/// Writes `value` as an unsigned LEB128 varint.
pub(crate) fn write_u64(out: &mut impl Write, mut value: u64) -> std::io::Result<()> {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            return out.write_all(&[byte]);
        }
        out.write_all(&[byte | 0x80])?;
    }
}

/// Writes `value` as a zigzag-mapped LEB128 varint.
pub(crate) fn write_i64(out: &mut impl Write, value: i64) -> std::io::Result<()> {
    write_u64(out, ((value << 1) ^ (value >> 63)) as u64)
}

/// Reads one byte, mapping EOF to [`TraceError::Corrupt`].
pub(crate) fn read_byte(inp: &mut impl Read) -> Result<u8, TraceError> {
    let mut buf = [0u8; 1];
    inp.read_exact(&mut buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => {
            TraceError::Corrupt("unexpected end of trace".to_string())
        }
        _ => TraceError::Io(e),
    })?;
    Ok(buf[0])
}

/// Reads an unsigned LEB128 varint.
pub(crate) fn read_u64(inp: &mut impl Read) -> Result<u64, TraceError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_BYTES {
        let byte = read_byte(inp)?;
        value |= ((byte & 0x7F) as u64)
            .checked_shl(shift)
            .ok_or_else(|| TraceError::Corrupt("varint overflows 64 bits".to_string()))?;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
    Err(TraceError::Corrupt("over-long varint".to_string()))
}

/// Reads a zigzag-mapped LEB128 varint.
pub(crate) fn read_i64(inp: &mut impl Read) -> Result<i64, TraceError> {
    let z = read_u64(inp)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_u(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v).unwrap();
        read_u64(&mut buf.as_slice()).unwrap()
    }

    fn round_i(v: i64) -> i64 {
        let mut buf = Vec::new();
        write_i64(&mut buf, v).unwrap();
        read_i64(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn unsigned_round_trip() {
        for v in [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX, 1 << 62] {
            assert_eq!(round_u(v), v);
        }
    }

    #[test]
    fn signed_round_trip() {
        for v in [0, 1, -1, 63, -64, 1 << 40, -(1 << 40), i64::MAX, i64::MIN] {
            assert_eq!(round_i(v), v);
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            assert_eq!(buf.len(), 1);
        }
        let mut buf = Vec::new();
        write_i64(&mut buf, 0).unwrap();
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_is_corrupt() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        buf.pop();
        assert!(matches!(
            read_u64(&mut buf.as_slice()),
            Err(crate::TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn overlong_varint_is_corrupt() {
        let buf = [0x80u8; 11];
        assert!(matches!(
            read_u64(&mut buf.as_slice()),
            Err(crate::TraceError::Corrupt(_))
        ));
    }
}
