//! Benchmarks of the decode-once trace arenas versus legacy per-cell decode,
//! and of the batched SSBF hot-path APIs versus their scalar equivalents.
//!
//! `decode/*` measures what a sweep pays to hand N cells the same trace:
//! the legacy path decodes once per cell; the arena path decodes once and
//! serves the rest from the registry. `ssbf_batched/*` measures the
//! commit-width batches the re-execution stage actually issues.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use svw_core::{Ssbf, SsbfConfig, SsbfProbe, SsbfUpdate, Ssn};
use svw_workloads::{TraceArenas, TraceKey, WorkloadProfile};

/// One trace shared by a plausible config-sweep's worth of cells.
const BENCH_TRACE_LEN: usize = 20_000;
const CELLS: usize = 8;

fn bench_decode_sharing(c: &mut Criterion) {
    let profile = WorkloadProfile::by_name("gcc").expect("gcc profile exists");
    let key = TraceKey::of(&profile, BENCH_TRACE_LEN, 1);

    let mut group = c.benchmark_group("decode");
    group.sample_size(10);

    // Legacy: every cell decodes (here: generates) the trace for itself.
    group.bench_function("per_cell_x8", |b| {
        b.iter(|| {
            for _ in 0..CELLS {
                black_box(profile.generate(BENCH_TRACE_LEN, 1));
            }
        })
    });

    // Arena: the first cell decodes and publishes; the rest clone the Arc.
    group.bench_function("shared_arena_x8", |b| {
        b.iter(|| {
            let arenas = TraceArenas::new();
            arenas.register(&key, CELLS);
            for _ in 0..CELLS {
                let program = match arenas.lookup(&key) {
                    Some(program) => program,
                    None => {
                        let program = Arc::new(profile.generate(BENCH_TRACE_LEN, 1));
                        arenas.publish(&key, program.clone());
                        program
                    }
                };
                black_box(program.len());
                arenas.release(&key, 1);
            }
        })
    });

    group.finish();
}

fn bench_ssbf_batched(c: &mut Criterion) {
    // Commit-width batches, as the re-execution stage issues them.
    const BATCH: usize = 8;
    const OPS: usize = 4096;
    let updates: Vec<SsbfUpdate> = (0..OPS as u64)
        .map(|i| ((i * 24) % 65536, 8, Ssn::new(i + 1)))
        .collect();
    let probes: Vec<SsbfProbe> = (0..OPS as u64)
        .map(|i| (((i * 24) ^ 0x40) % 65536, 8))
        .collect();

    let mut group = c.benchmark_group("ssbf_batched");
    for (name, cfg) in [
        ("simple_512", SsbfConfig::paper_default()),
        ("double_bloom", SsbfConfig::double_bloom()),
        ("word_granularity", SsbfConfig::word_granularity()),
    ] {
        group.bench_function(format!("{name}/scalar"), |b| {
            let mut ssbf = Ssbf::new(cfg);
            b.iter(|| {
                let mut conservative = 0u64;
                for (upd, prb) in updates.chunks(BATCH).zip(probes.chunks(BATCH)) {
                    for &(addr, bytes, ssn) in upd {
                        ssbf.update_store(addr, bytes, ssn);
                    }
                    for &(addr, bytes) in prb {
                        conservative += ssbf.must_reexecute(addr, bytes, Ssn::new(4)) as u64;
                    }
                }
                black_box(conservative)
            })
        });
        group.bench_function(format!("{name}/batched"), |b| {
            let mut ssbf = Ssbf::new(cfg);
            let mut conflicts = Vec::with_capacity(BATCH);
            b.iter(|| {
                let mut conservative = 0u64;
                for (upd, prb) in updates.chunks(BATCH).zip(probes.chunks(BATCH)) {
                    ssbf.update_batch(upd);
                    ssbf.probe_batch(prb, &mut conflicts);
                    conservative += conflicts.iter().filter(|&&c| c > Ssn::new(4)).count() as u64;
                }
                black_box(conservative)
            })
        });
    }
    group.finish();
}

criterion_group!(decode, bench_decode_sharing, bench_ssbf_batched);
criterion_main!(decode);
