//! Throughput benchmarks for the `.svwt` trace codec: instructions/second for
//! capture (encode), materialized replay (decode), and streaming replay, plus the
//! end-to-end comparison the cache cares about — regenerating a workload versus
//! reading its captured trace back.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use svw_isa::InstStream;
use svw_trace::{read_program_from_slice, write_program_to_vec, TraceReader};
use svw_workloads::WorkloadProfile;

/// Long enough to amortize header costs, short enough for repeated sampling.
const BENCH_TRACE_LEN: usize = 50_000;

fn bench_codec(c: &mut Criterion) {
    let profile = WorkloadProfile::by_name("gcc").expect("gcc profile exists");
    let program = profile.generate(BENCH_TRACE_LEN, 1);
    let bytes = write_program_to_vec(&program, BENCH_TRACE_LEN, 1, profile.fingerprint());
    let insts = program.len() as u64;

    let mut group = c.benchmark_group("trace_codec");
    group.sample_size(10);
    group.throughput(Throughput::Elements(insts));

    group.bench_function("encode", |b| {
        b.iter(|| {
            black_box(write_program_to_vec(
                black_box(&program),
                BENCH_TRACE_LEN,
                1,
                profile.fingerprint(),
            ))
        })
    });

    group.bench_function("decode_materialized", |b| {
        b.iter(|| black_box(read_program_from_slice(black_box(&bytes)).unwrap()))
    });

    group.bench_function("decode_streaming", |b| {
        b.iter(|| {
            let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
            let mut count = 0u64;
            while let Some(inst) = reader.next_inst() {
                count += black_box(inst.seq & 1);
            }
            black_box(count)
        })
    });

    // The alternative the cache replaces: regenerating the workload from scratch.
    group.bench_function("generate_from_scratch", |b| {
        b.iter(|| black_box(profile.generate(BENCH_TRACE_LEN, 1)))
    });

    group.finish();
}

criterion_group!(trace_codec, bench_codec);
criterion_main!(trace_codec);
