//! One benchmark per paper artifact: each runs a scaled-down version of the
//! corresponding figure/table reproduction end-to-end (a representative workload under
//! the figure's configurations). The full-size reproductions are produced by the
//! `svw-sim` binaries and recorded in `EXPERIMENTS.md`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use svw_cpu::Cpu;
use svw_sim::presets;
use svw_workloads::WorkloadProfile;

/// Trace length for the in-benchmark runs: long enough for predictors to train, short
/// enough for Criterion's repeated sampling.
const BENCH_TRACE_LEN: usize = 12_000;

fn bench_figure(
    c: &mut Criterion,
    group_name: &str,
    workload: &str,
    configs: Vec<svw_cpu::MachineConfig>,
) {
    let program = WorkloadProfile::by_name(workload)
        .unwrap_or_else(|| panic!("unknown workload {workload}"))
        .generate(BENCH_TRACE_LEN, 1);
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for config in configs {
        group.bench_with_input(
            BenchmarkId::from_parameter(&config.name),
            &config,
            |b, cfg| {
                b.iter(|| black_box(Cpu::new(cfg.clone(), &program).run().ipc()));
            },
        );
    }
    group.finish();
}

fn fig5(c: &mut Criterion) {
    bench_figure(c, "fig5_nlq(gcc)", "gcc", presets::fig5_nlq_configs());
}

fn fig6(c: &mut Criterion) {
    bench_figure(c, "fig6_ssq(vortex)", "vortex", presets::fig6_ssq_configs());
}

fn fig7(c: &mut Criterion) {
    bench_figure(c, "fig7_rle(crafty)", "crafty", presets::fig7_rle_configs());
}

fn fig8(c: &mut Criterion) {
    bench_figure(
        c,
        "fig8_ssbf(perl.d)",
        "perl.d",
        presets::fig8_ssbf_configs(),
    );
}

fn ssn_width(c: &mut Criterion) {
    bench_figure(
        c,
        "tab_ssn_width(gzip)",
        "gzip",
        presets::ssn_width_configs(),
    );
}

fn ssbf_policy(c: &mut Criterion) {
    bench_figure(
        c,
        "tab_spec_ssbf(perl.s)",
        "perl.s",
        presets::ssbf_update_policy_configs(),
    );
}

criterion_group!(figures, fig5, fig6, fig7, fig8, ssn_width, ssbf_policy);
criterion_main!(figures);
