//! Cell-startup benchmark: fresh `Cpu` construction per cell versus recycling a
//! per-worker `SimArena`.
//!
//! The trace is deliberately short so that per-cell startup (allocating or
//! resetting the predictor tables, caches, queues, ROB ring, and rename slab)
//! is a visible share of each iteration — exactly the cost profile of a dense
//! sweep with many small cells. The two variants must produce identical
//! statistics (asserted each iteration); only their startup strategy differs.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use svw_cpu::{Cpu, LsqOrganization, MachineConfig, ReexecMode, SimArena};
use svw_workloads::WorkloadProfile;

/// Short on purpose: startup cost amortizes away on long traces.
const TRACE_LEN: usize = 2_000;

fn nlq_svw_config() -> MachineConfig {
    MachineConfig::eight_wide(
        "nlq-svw",
        LsqOrganization::Nlq {
            store_exec_bandwidth: 2,
        },
        ReexecMode::Svw(svw_core::SvwConfig::paper_default()),
    )
}

fn cell_startup(c: &mut Criterion) {
    let program = WorkloadProfile::by_name("gcc")
        .expect("workload exists")
        .generate(TRACE_LEN, 1);
    let config = nlq_svw_config();
    let shared = Arc::new(config.clone());
    let reference = Cpu::new(config.clone(), &program).run().cycles;

    let mut group = c.benchmark_group("cell_startup(nlq-svw x 2k)");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(TRACE_LEN as u64));

    // The old per-cell cost: a config clone plus a full pipeline rebuild.
    group.bench_function("fresh", |b| {
        b.iter(|| {
            let cycles = Cpu::new(config.clone(), &program).run().cycles;
            assert_eq!(cycles, reference);
            black_box(cycles)
        })
    });

    // The recycled path: the arena's pipeline is cleared in place, allocations
    // retained, and the config shared by refcount.
    let mut arena = SimArena::new();
    group.bench_function("recycled", |b| {
        b.iter(|| {
            let cycles = Cpu::recycle(&mut arena, &shared, &program).run().cycles;
            assert_eq!(cycles, reference);
            black_box(cycles)
        })
    });
    group.finish();
}

criterion_group!(arena, cell_startup);
criterion_main!(arena);
