//! Matrix-level benchmark: the cell-parallel sweep engine end-to-end over a small
//! (workload × configuration × seed) matrix. This is the wall-clock number the
//! commit-path allocation work targets — the simulator's per-cycle hot loop
//! (commit / re-execute / dispatch) dominates a sweep, so eliminating the
//! `RobEntry` and `DynInst` clones there moves this benchmark directly.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use svw_sim::{presets, run_cells, CacheMode, ResultCache, RunOptions};
use svw_workloads::WorkloadProfile;

/// Long enough for predictors to train and the ROB to stay busy; short enough for
/// repeated sampling.
const BENCH_TRACE_LEN: usize = 8_000;

fn sweep_matrix(c: &mut Criterion) {
    let workloads: Vec<WorkloadProfile> = ["gcc", "vortex"]
        .iter()
        .map(|n| WorkloadProfile::by_name(n).expect("workload exists"))
        .collect();
    let configs = presets::fig5_nlq_configs();
    let seeds = [1u64, 2];
    let cells = workloads.len() * configs.len() * seeds.len();

    let mut group = c.benchmark_group("sweep_matrix(2w x fig5 x 2s)");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements((cells * BENCH_TRACE_LEN) as u64));
    for jobs in [1usize, 0] {
        let label = if jobs == 0 { "jobs=auto" } else { "jobs=1" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &jobs, |b, &jobs| {
            let opts = RunOptions {
                jobs,
                ..RunOptions::default()
            };
            b.iter(|| {
                let result = run_cells(
                    "bench",
                    &workloads,
                    &configs,
                    BENCH_TRACE_LEN,
                    &seeds,
                    0,
                    &opts,
                );
                assert_eq!(result.failures().count(), 0);
                black_box(result.cells.len())
            });
        });
    }
    group.finish();
}

/// The content-addressed result-cache hit path: the same matrix as
/// [`sweep_matrix`], but served entirely from a pre-populated `--result-cache`
/// store. Each iteration opens a fresh [`ResultCache`] instance so every cell
/// takes the honest cold-process path — fanout-directory read, checksum
/// validation, canonical-line parse — rather than the in-process index.
fn sweep_matrix_cached(c: &mut Criterion) {
    let workloads: Vec<WorkloadProfile> = ["gcc", "vortex"]
        .iter()
        .map(|n| WorkloadProfile::by_name(n).expect("workload exists"))
        .collect();
    let configs = presets::fig5_nlq_configs();
    let seeds = [1u64, 2];
    let cells = workloads.len() * configs.len() * seeds.len();

    let dir = std::env::temp_dir().join(format!("svw-bench-rcache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let rc = ResultCache::open(&dir, CacheMode::ReadWrite).expect("cache opens");
        let opts = RunOptions {
            result_cache: Some(&rc),
            ..RunOptions::default()
        };
        let cold = run_cells(
            "bench",
            &workloads,
            &configs,
            BENCH_TRACE_LEN,
            &seeds,
            0,
            &opts,
        );
        assert_eq!(cold.failures().count(), 0);
    }

    let mut group = c.benchmark_group("sweep_matrix_cached(2w x fig5 x 2s)");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements((cells * BENCH_TRACE_LEN) as u64));
    group.bench_function(BenchmarkId::from_parameter("hit-path"), |b| {
        b.iter(|| {
            let rc = ResultCache::open(&dir, CacheMode::ReadWrite).expect("cache opens");
            let opts = RunOptions {
                result_cache: Some(&rc),
                ..RunOptions::default()
            };
            let result = run_cells(
                "bench",
                &workloads,
                &configs,
                BENCH_TRACE_LEN,
                &seeds,
                0,
                &opts,
            );
            assert_eq!(result.cached, result.cells.len(), "fully warm");
            black_box(result.cells.len())
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(matrix, sweep_matrix, sweep_matrix_cached);
criterion_main!(matrix);
