//! Micro-benchmarks of the SVW hardware structures.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use svw_core::{Ssbf, SsbfConfig, Ssn, SsnClock, SsnWidth, SvwConfig, SvwFilter, VulnWindow};
use svw_rle::{IntegrationTable, ItConfig, ItEntry, ItSignature, RleKind};

fn bench_ssbf_organisations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssbf_update_lookup");
    for (name, cfg) in [
        ("simple_512", SsbfConfig::paper_default()),
        ("simple_128", SsbfConfig::small_128()),
        ("simple_2048", SsbfConfig::large_2048()),
        ("double_bloom", SsbfConfig::double_bloom()),
        ("word_granularity", SsbfConfig::word_granularity()),
        ("infinite", SsbfConfig::infinite()),
    ] {
        group.bench_function(name, |b| {
            let mut ssbf = Ssbf::new(cfg);
            let mut ssn = 0u64;
            b.iter(|| {
                ssn += 1;
                let addr = (ssn * 24) % 65536;
                ssbf.update_store(black_box(addr), 8, Ssn::new(ssn));
                black_box(ssbf.must_reexecute(black_box(addr ^ 0x40), 8, Ssn::new(ssn / 2)))
            });
        });
    }
    group.finish();
}

fn bench_ssn_clock(c: &mut Criterion) {
    c.bench_function("ssn_clock_assign_retire", |b| {
        let mut clock = SsnClock::new(SsnWidth::Infinite);
        b.iter(|| {
            let s = clock.assign_store();
            clock.retire_store(s);
            black_box(clock.retire())
        });
    });
}

fn bench_filter_end_to_end(c: &mut Criterion) {
    c.bench_function("svw_filter_store_load_pair", |b| {
        let mut svw = SvwFilter::new(SvwConfig::paper_default());
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 8) % 32768;
            let window = svw.load_dispatch_window();
            let ssn = svw.assign_store_ssn();
            svw.store_svw_stage(addr, 8, ssn);
            svw.store_retired(ssn);
            black_box(svw.must_reexecute(addr, 8, VulnWindow::at_dispatch(window.boundary())))
        });
    });
}

fn bench_integration_table(c: &mut Criterion) {
    c.bench_function("integration_table_insert_lookup", |b| {
        let mut it = IntegrationTable::new(ItConfig::paper_default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let sig = ItSignature {
                base_preg: (i % 4096) as u32,
                offset: ((i * 8) % 256) as i64,
                width: svw_isa::MemWidth::W8,
            };
            it.insert(ItEntry {
                signature: sig,
                value: i,
                ssn: Ssn::new(i),
                producer_seq: i,
                kind: RleKind::LoadReuse,
                from_squashed: false,
            });
            black_box(it.lookup(&sig))
        });
    });
}

criterion_group!(
    structures,
    bench_ssbf_organisations,
    bench_ssn_clock,
    bench_filter_end_to_end,
    bench_integration_table
);
criterion_main!(structures);
