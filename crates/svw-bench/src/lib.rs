//! # svw-bench — benchmark harness
//!
//! Criterion benchmarks for the SVW reproduction. There are two groups:
//!
//! * `structures` — micro-benchmarks of the SVW hardware structures themselves (SSBF
//!   update/lookup under each organisation, SSN clock operations, integration-table
//!   lookups), establishing that the simulated structures are cheap to model;
//! * `figures` — scaled-down end-to-end runs of every figure/table configuration pair
//!   (one benchmark per paper artifact), which double as regression benchmarks for the
//!   simulator's own throughput.
//!
//! Two further groups exercise the infrastructure: `trace_codec` (`.svwt`
//! encode/decode throughput), and `matrix` / `arena` (cell-scheduler sweep
//! throughput and fresh-vs-recycled cell startup), which back the committed CI
//! performance baseline (`benches/baselines/ci.json`).
//!
//! The *full-length* figure reproductions are produced by the unified `svwsim`
//! binary (`cargo run --release -p svw-sim --bin svwsim -- sweep --figure fig5`);
//! the Criterion benches here use shorter traces so `cargo bench` finishes in
//! minutes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use svw_cpu::{Cpu, CpuStats, MachineConfig};
use svw_workloads::WorkloadProfile;

/// Runs one (workload, configuration) pair over a freshly generated trace of
/// `trace_len` instructions. Shared helper for the figure benchmarks.
pub fn run_one(workload: &str, config: MachineConfig, trace_len: usize, seed: u64) -> CpuStats {
    let profile =
        WorkloadProfile::by_name(workload).unwrap_or_else(|| panic!("unknown workload {workload}"));
    let program = profile.generate(trace_len, seed);
    Cpu::new(config, &program).run()
}
