//! # svw-bench — benchmark harness
//!
//! Criterion benchmarks for the SVW reproduction. There are two groups:
//!
//! * `structures` — micro-benchmarks of the SVW hardware structures themselves (SSBF
//!   update/lookup under each organisation, SSN clock operations, integration-table
//!   lookups), establishing that the simulated structures are cheap to model;
//! * `figures` — scaled-down end-to-end runs of every figure/table configuration pair
//!   (one benchmark per paper artifact), which double as regression benchmarks for the
//!   simulator's own throughput.
//!
//! The *full-length* figure reproductions (the actual numbers recorded in
//! `EXPERIMENTS.md`) are produced by the `svw-sim` binaries
//! (`cargo run --release -p svw-sim --bin fig5_nlq`, …); the Criterion benches here use
//! shorter traces so `cargo bench` finishes in minutes.

#![forbid(unsafe_code)]

use svw_cpu::{Cpu, CpuStats, MachineConfig};
use svw_workloads::WorkloadProfile;

/// Runs one (workload, configuration) pair over a freshly generated trace of
/// `trace_len` instructions. Shared helper for the figure benchmarks.
pub fn run_one(workload: &str, config: MachineConfig, trace_len: usize, seed: u64) -> CpuStats {
    let profile =
        WorkloadProfile::by_name(workload).unwrap_or_else(|| panic!("unknown workload {workload}"));
    let program = profile.generate(trace_len, seed);
    Cpu::new(config, &program).run()
}
