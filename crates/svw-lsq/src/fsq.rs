//! The forwarding store queue (FSQ) of the speculative-SQ design.
//!
//! "A small, low-bandwidth forwarding SQ (FSQ) implements forwarding. The FSQ requires
//! fewer associative ports than a conventional SQ because only loads that read values
//! from older stores access it. It requires fewer entries because only stores that
//! forward values to loads are allocated entries in it."
//!
//! Stores predicted as forwarders by the steering predictor allocate entries here (if
//! space is available — allocation is best-effort and speculative); loads predicted as
//! forwardees search it. Re-execution checks that the steering was right.

use svw_core::Ssn;
use svw_isa::{Addr, InstSeq, MemWidth, Pc};

use crate::{ForwardResult, StoreQueue};

/// The forwarding store queue: a small associative store queue with best-effort
/// allocation.
#[derive(Clone, Debug)]
pub struct Fsq {
    queue: StoreQueue,
    rejected_allocations: u64,
}

impl Fsq {
    /// The paper's FSQ size: 16 entries, single associative port.
    pub const PAPER_ENTRIES: usize = 16;

    /// Creates an empty FSQ with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Fsq {
            queue: StoreQueue::new(capacity),
            rejected_allocations: 0,
        }
    }

    /// Restores the empty state for `capacity` — observationally identical to
    /// [`Fsq::new`] — retaining the entry storage.
    pub fn reset(&mut self, capacity: usize) {
        self.queue.reset(capacity);
        self.rejected_allocations = 0;
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if the FSQ holds no stores.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of steered stores that could not be allocated because the FSQ was full
    /// (these will show up as missed forwarding instances caught by re-execution).
    pub fn rejected_allocations(&self) -> u64 {
        self.rejected_allocations
    }

    /// Number of associative searches performed (the single FSQ port's traffic).
    pub fn searches(&self) -> u64 {
        self.queue.searches()
    }

    /// Attempts to allocate an entry for a steered store. Returns `true` on success;
    /// on failure (FSQ full) the store simply does not enter and any loads that needed
    /// it will mis-forward and be caught by re-execution.
    pub fn try_allocate(&mut self, seq: InstSeq, pc: Pc, ssn: Ssn) -> bool {
        if self.queue.has_space() {
            self.queue.allocate(seq, pc, ssn);
            true
        } else {
            self.rejected_allocations += 1;
            false
        }
    }

    /// Records the address/data of a previously allocated store (no-op if the store
    /// was rejected at allocation).
    pub fn resolve(&mut self, seq: InstSeq, addr: Addr, width: MemWidth, value: u64) {
        if self.queue.get(seq).is_some() {
            self.queue.resolve(seq, addr, width, value);
        }
    }

    /// Searches the FSQ on behalf of a steered load.
    pub fn search(&mut self, load_seq: InstSeq, addr: Addr, width: MemWidth) -> ForwardResult {
        self.queue.search_forward(load_seq, addr, width)
    }

    /// Removes the store with sequence number `seq` when it commits (no-op if it was
    /// never allocated).
    pub fn release(&mut self, seq: InstSeq) {
        if self.queue.front().map(|e| e.seq) == Some(seq) {
            let _ = self.queue.pop_commit(seq);
        }
    }

    /// Discards stores younger than `survivor` after a flush.
    pub fn flush_after(&mut self, survivor: Option<InstSeq>) {
        let _ = self.queue.flush_after(survivor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_best_effort() {
        let mut fsq = Fsq::new(2);
        assert!(fsq.try_allocate(1, 0x100, Ssn::new(1)));
        assert!(fsq.try_allocate(3, 0x108, Ssn::new(2)));
        assert!(!fsq.try_allocate(5, 0x110, Ssn::new(3)));
        assert_eq!(fsq.rejected_allocations(), 1);
        assert_eq!(fsq.len(), 2);
    }

    #[test]
    fn forwarding_through_fsq() {
        let mut fsq = Fsq::new(Fsq::PAPER_ENTRIES);
        fsq.try_allocate(1, 0x100, Ssn::new(1));
        fsq.resolve(1, 0x9000, MemWidth::W8, 0x77);
        match fsq.search(2, 0x9000, MemWidth::W8) {
            ForwardResult::Forward { value, seq, .. } => {
                assert_eq!(value, 0x77);
                assert_eq!(seq, 1);
            }
            other => panic!("expected forwarding, got {other:?}"),
        }
        assert_eq!(fsq.searches(), 1);
    }

    #[test]
    fn resolve_and_release_of_rejected_store_are_noops() {
        let mut fsq = Fsq::new(1);
        fsq.try_allocate(1, 0x100, Ssn::new(1));
        assert!(!fsq.try_allocate(3, 0x108, Ssn::new(2)));
        fsq.resolve(3, 0xA000, MemWidth::W8, 1); // rejected: ignored
        fsq.release(3); // rejected: ignored
        assert_eq!(fsq.len(), 1);
        fsq.release(1);
        assert!(fsq.is_empty());
    }

    #[test]
    fn flush_discards_young_entries() {
        let mut fsq = Fsq::new(4);
        fsq.try_allocate(1, 0, Ssn::new(1));
        fsq.try_allocate(3, 0, Ssn::new(2));
        fsq.flush_after(Some(1));
        assert_eq!(fsq.len(), 1);
        fsq.flush_after(None);
        assert!(fsq.is_empty());
    }
}
