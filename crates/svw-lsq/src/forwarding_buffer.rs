//! The best-effort forwarding buffer that fronts each data-cache bank in the
//! speculative-SQ design.
//!
//! "A small, 8-entry unordered forwarding buffer that fronts each cache bank handles
//! simple forwarding cases (i.e., unambiguous ones which execute in order anyway).
//! Loads that execute incorrectly in this structure are subsequently steered to the
//! FSQ."
//!
//! The buffer holds the most recent stores (by execution order) to addresses mapping
//! to its bank. It is *best effort*: it may return a stale value (the real youngest
//! older store may not have executed yet, or may have been displaced), and it never
//! guarantees age ordering — mistakes are caught by load re-execution, which then
//! trains the FSQ steering predictor.

use std::collections::VecDeque;

use svw_core::Ssn;
use svw_isa::{Addr, InstSeq, MemWidth, Pc, Value};

#[derive(Clone, Copy, Debug)]
struct BufferedStore {
    seq: InstSeq,
    pc: Pc,
    ssn: Ssn,
    addr: Addr,
    width: MemWidth,
    value: Value,
}

/// A set of per-bank, fixed-capacity, unordered forwarding buffers.
#[derive(Clone, Debug)]
pub struct ForwardingBuffer {
    banks: usize,
    entries_per_bank: usize,
    interleave_bytes: u64,
    buffers: Vec<VecDeque<BufferedStore>>,
    hits: u64,
    lookups: u64,
}

impl ForwardingBuffer {
    /// The paper's geometry: 8 entries in front of each of the 2 cache banks.
    pub fn paper_default() -> Self {
        Self::new(2, 8, 64)
    }

    /// Creates `banks` buffers of `entries_per_bank` entries each, with banks selected
    /// by address interleaving at `interleave_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two or either size is zero.
    pub fn new(banks: usize, entries_per_bank: usize, interleave_bytes: u64) -> Self {
        let mut fb = ForwardingBuffer {
            banks,
            entries_per_bank,
            interleave_bytes,
            buffers: Vec::new(),
            hits: 0,
            lookups: 0,
        };
        fb.reset(banks, entries_per_bank, interleave_bytes);
        fb
    }

    /// Restores the empty state for the given geometry — observationally identical to
    /// [`ForwardingBuffer::new`] — retaining the per-bank buffer storage.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two or either size is zero.
    pub fn reset(&mut self, banks: usize, entries_per_bank: usize, interleave_bytes: u64) {
        assert!(banks.is_power_of_two(), "bank count must be a power of two");
        assert!(entries_per_bank > 0, "buffer must have at least one entry");
        assert!(
            interleave_bytes > 0,
            "interleave granularity must be non-zero"
        );
        self.buffers.resize(banks, VecDeque::new());
        for buf in &mut self.buffers {
            buf.clear();
        }
        self.banks = banks;
        self.entries_per_bank = entries_per_bank;
        self.interleave_bytes = interleave_bytes;
        self.hits = 0;
        self.lookups = 0;
    }

    #[inline]
    fn bank_of(&self, addr: Addr) -> usize {
        ((addr / self.interleave_bytes) as usize) & (self.banks - 1)
    }

    /// Records an executed store (displacing the oldest buffered store of its bank if
    /// the buffer is full). `ssn` is the store's sequence number; loads that take a
    /// value from this entry are vulnerable to every younger store, so the SSN travels
    /// with the value for window bounding.
    pub fn record_store(
        &mut self,
        seq: InstSeq,
        pc: Pc,
        ssn: Ssn,
        addr: Addr,
        width: MemWidth,
        value: Value,
    ) {
        let bank = self.bank_of(addr);
        let buf = &mut self.buffers[bank];
        if buf.len() == self.entries_per_bank {
            buf.pop_front();
        }
        buf.push_back(BufferedStore {
            seq,
            pc,
            ssn,
            addr,
            width,
            value,
        });
    }

    /// Best-effort lookup on behalf of a load: returns the sequence number, PC, SSN,
    /// and value of the most recently *buffered* older store that fully covers the
    /// load, if any. This may not be the architecturally correct forwarding source —
    /// the entry may even belong to an already-retired store whose value younger
    /// retired stores have overwritten — so consumers must bound the load's
    /// vulnerability window by the returned SSN.
    pub fn lookup(
        &mut self,
        load_seq: InstSeq,
        addr: Addr,
        width: MemWidth,
    ) -> Option<(InstSeq, Pc, Ssn, Value)> {
        self.lookups += 1;
        let bank = self.bank_of(addr);
        let found = self.buffers[bank]
            .iter()
            .rev()
            .find(|s| {
                s.seq < load_seq
                    && s.addr <= addr
                    && addr + width.bytes() <= s.addr + s.width.bytes()
            })
            .map(|s| {
                let shift = (addr - s.addr) * 8;
                (s.seq, s.pc, s.ssn, (s.value >> shift) & width.mask())
            });
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Discards buffered stores younger than `survivor` after a flush.
    pub fn flush_after(&mut self, survivor: Option<InstSeq>) {
        for buf in &mut self.buffers {
            match survivor {
                None => buf.clear(),
                Some(s) => buf.retain(|e| e.seq <= s),
            }
        }
    }

    /// Number of lookups that found a covering entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_in_order_forwarding_works() {
        let mut fb = ForwardingBuffer::paper_default();
        fb.record_store(1, 0x100, Ssn::new(1), 0x1000, MemWidth::W8, 0xAB);
        assert_eq!(
            fb.lookup(2, 0x1000, MemWidth::W8),
            Some((1, 0x100, Ssn::new(1), 0xAB))
        );
        assert_eq!(fb.hits(), 1);
    }

    #[test]
    fn younger_stores_are_not_forwarded() {
        let mut fb = ForwardingBuffer::paper_default();
        fb.record_store(5, 0x100, Ssn::new(1), 0x1000, MemWidth::W8, 0xAB);
        assert_eq!(fb.lookup(2, 0x1000, MemWidth::W8), None);
    }

    #[test]
    fn capacity_displacement_loses_old_stores() {
        let mut fb = ForwardingBuffer::new(1, 2, 64);
        fb.record_store(1, 0x100, Ssn::new(1), 0x1000, MemWidth::W8, 1);
        fb.record_store(2, 0x104, Ssn::new(2), 0x2000, MemWidth::W8, 2);
        fb.record_store(3, 0x108, Ssn::new(3), 0x3000, MemWidth::W8, 3);
        // Store 1 was displaced: the load no longer sees it (best-effort behaviour).
        assert_eq!(fb.lookup(9, 0x1000, MemWidth::W8), None);
        assert!(fb.lookup(9, 0x3000, MemWidth::W8).is_some());
    }

    #[test]
    fn best_effort_can_return_stale_value() {
        // A younger store to the same address executed *before* an older one (out of
        // order): the buffer returns the most recently buffered covering store, which
        // is not necessarily the architecturally correct source.
        let mut fb = ForwardingBuffer::paper_default();
        fb.record_store(10, 0x100, Ssn::new(10), 0x1000, MemWidth::W8, 0xAAAA);
        fb.record_store(4, 0x108, Ssn::new(4), 0x1000, MemWidth::W8, 0xBBBB);
        // Load at seq 12: correct source is store 10, but the buffer returns store 4's
        // value because it was buffered more recently. The returned SSN lets the
        // consumer mark the load vulnerable to store 10.
        let (seq, _, ssn, _) = fb.lookup(12, 0x1000, MemWidth::W8).unwrap();
        assert_eq!(seq, 4);
        assert_eq!(ssn, Ssn::new(4));
    }

    #[test]
    fn subword_extraction() {
        let mut fb = ForwardingBuffer::paper_default();
        fb.record_store(
            1,
            0x100,
            Ssn::new(1),
            0x2000,
            MemWidth::W8,
            0x1111_2222_3333_4444,
        );
        assert_eq!(
            fb.lookup(2, 0x2004, MemWidth::W4),
            Some((1, 0x100, Ssn::new(1), 0x1111_2222))
        );
    }

    #[test]
    fn flush_discards_young_entries() {
        let mut fb = ForwardingBuffer::paper_default();
        fb.record_store(1, 0x100, Ssn::new(1), 0x1000, MemWidth::W8, 1);
        fb.record_store(5, 0x104, Ssn::new(2), 0x1040, MemWidth::W8, 2);
        fb.flush_after(Some(3));
        assert!(fb.lookup(9, 0x1000, MemWidth::W8).is_some());
        assert_eq!(fb.lookup(9, 0x1040, MemWidth::W8), None);
        fb.flush_after(None);
        assert_eq!(fb.lookup(9, 0x1000, MemWidth::W8), None);
    }
}
