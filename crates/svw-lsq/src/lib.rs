//! # svw-lsq — load/store queue substrates
//!
//! Building blocks for the three load/store-unit organisations the paper studies:
//!
//! * the **conventional** unit (Figure 2a): an associatively searched store queue
//!   ([`StoreQueue`]) for store-to-load forwarding plus an associatively searched load
//!   queue ([`LoadQueue`]) for memory-ordering checks;
//! * the **non-associative LQ** (NLQ, Figure 2b): the same store queue, but the load
//!   queue's associative port is removed — ordering is checked by pre-commit load
//!   re-execution instead (driven by the `svw-cpu` crate);
//! * the **speculative SQ** (SSQ, Figure 2c): a large non-associative retirement store
//!   queue (modelled by [`StoreQueue`] with its search left unused), a small
//!   associative forwarding store queue ([`Fsq`]) that only predicted-forwarding stores
//!   enter, and an 8-entry best-effort [`ForwardingBuffer`] in front of each cache
//!   bank.
//!
//! The structures here hold in-flight state and answer searches; the policy — which
//! loads are marked for re-execution, which value a load ends up with, when to flush —
//! lives in the `svw-cpu` pipeline model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod forwarding_buffer;
mod fsq;
mod load_queue;
mod store_queue;

pub use forwarding_buffer::ForwardingBuffer;
pub use fsq::Fsq;
pub use load_queue::{LoadEntry, LoadQueue};
pub use store_queue::{ForwardResult, StoreEntry, StoreQueue};
