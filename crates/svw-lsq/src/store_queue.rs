//! An age-ordered queue of in-flight stores with (optional) associative forwarding
//! search.

use std::collections::VecDeque;

use svw_core::Ssn;
use svw_isa::{Addr, InstSeq, MemWidth, Pc, Value};

/// One in-flight store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreEntry {
    /// Dynamic sequence number.
    pub seq: InstSeq,
    /// Store sequence number assigned at rename.
    pub ssn: Ssn,
    /// Static PC.
    pub pc: Pc,
    /// Effective address, once the address has been computed.
    pub addr: Option<Addr>,
    /// Access width, once the address has been computed.
    pub width: Option<MemWidth>,
    /// Store data, once available.
    pub value: Option<Value>,
}

impl StoreEntry {
    /// Returns `true` once both address and data are known.
    pub fn resolved(&self) -> bool {
        self.addr.is_some() && self.value.is_some()
    }

    fn overlaps(&self, addr: Addr, width: MemWidth) -> bool {
        match (self.addr, self.width) {
            (Some(a), Some(w)) => {
                let (s0, s1) = (a, a + w.bytes());
                let (l0, l1) = (addr, addr + width.bytes());
                s0 < l1 && l0 < s1
            }
            _ => false,
        }
    }

    fn contains(&self, addr: Addr, width: MemWidth) -> bool {
        match (self.addr, self.width) {
            (Some(a), Some(w)) => a <= addr && addr + width.bytes() <= a + w.bytes(),
            _ => false,
        }
    }
}

/// The outcome of a forwarding search on behalf of a load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForwardResult {
    /// No older store overlaps the load's address (among stores whose addresses are
    /// known).
    None,
    /// The youngest older overlapping store fully covers the load and its data is
    /// available: the load forwards this value.
    Forward {
        /// Sequence number of the forwarding store.
        seq: InstSeq,
        /// SSN of the forwarding store (used to shrink the load's vulnerability
        /// window under the `+UPD` policy).
        ssn: Ssn,
        /// PC of the forwarding store.
        pc: Pc,
        /// The forwarded value (adjusted to the load's width).
        value: Value,
    },
    /// The youngest older overlapping store either only partially covers the load or
    /// has not produced its data yet; the load cannot obtain a correct value from the
    /// queue this cycle.
    Conflict {
        /// Sequence number of the conflicting store.
        seq: InstSeq,
    },
}

/// Number of buckets in the address-granule occupancy index (power of two).
const GRANULE_BUCKETS: usize = 256;

/// Log2 of the granule size: 8-byte granules, the widest single access, so any
/// store or load span covers at most two granules.
const GRANULE_SHIFT: u64 = 3;

/// An age-ordered store queue.
///
/// Used directly as the conventional/NLQ store queue (associative search enabled) and
/// as the SSQ's retirement store queue (RSQ — the search methods are simply never
/// called by that configuration).
///
/// The associative forwarding search is accelerated by an *address-granule index*:
/// a small bucket-count table over 8-byte address granules, maintained as stores
/// resolve and leave the queue. Most loads have no older overlapping store, and for
/// them the index proves "no resolved store touches any granule of this load" in a
/// couple of array reads, skipping the age-ordered scan entirely. The index is
/// purely conservative — bucket aliasing only ever *forces* a scan, never skips a
/// real match — so results are bit-for-bit identical with and without it.
#[derive(Clone, Debug)]
pub struct StoreQueue {
    capacity: usize,
    entries: VecDeque<StoreEntry>,
    /// In-flight stores whose address is still unknown. Maintained so the hot
    /// "may this load issue speculatively?" query short-circuits without scanning.
    unresolved: usize,
    /// Lower bound on the sequence number of the oldest unresolved store: every
    /// entry with `seq < unresolved_floor` is known to be resolved. The floor only
    /// advances, so [`StoreQueue::has_unresolved_older_than`] scans each queue
    /// position at most once between allocations (amortised O(1)) instead of
    /// re-walking the resolved prefix on every load issue. A `Cell` because the
    /// query is logically `&self`; the hint never changes observable results.
    unresolved_floor: std::cell::Cell<InstSeq>,
    /// Per-granule-bucket count of resolved stores covering that granule.
    granules: [u16; GRANULE_BUCKETS],
    searches: u64,
    forwards: u64,
}

/// The inclusive granule span of `[addr, addr + width.bytes())`.
#[inline]
fn granule_span(addr: Addr, width: MemWidth) -> (u64, u64) {
    (
        addr >> GRANULE_SHIFT,
        (addr + width.bytes() - 1) >> GRANULE_SHIFT,
    )
}

#[inline]
fn bucket(granule: u64) -> usize {
    (granule as usize) & (GRANULE_BUCKETS - 1)
}

impl StoreQueue {
    /// Creates an empty queue with space for `capacity` stores.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store queue capacity must be non-zero");
        StoreQueue {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            unresolved: 0,
            unresolved_floor: std::cell::Cell::new(0),
            granules: [0; GRANULE_BUCKETS],
            searches: 0,
            forwards: 0,
        }
    }

    /// Adds a resolved store's span to the granule index.
    #[inline]
    fn index_add(&mut self, addr: Addr, width: MemWidth) {
        let (g0, g1) = granule_span(addr, width);
        for g in g0..=g1 {
            self.granules[bucket(g)] += 1;
        }
    }

    /// Removes a resolved store's span from the granule index.
    #[inline]
    fn index_remove(&mut self, addr: Addr, width: MemWidth) {
        let (g0, g1) = granule_span(addr, width);
        for g in g0..=g1 {
            self.granules[bucket(g)] -= 1;
        }
    }

    /// Whether any resolved store *may* touch a granule of `[addr, addr+width)`.
    /// `false` proves no store overlaps (overlapping byte ranges share a granule);
    /// `true` may be a bucket alias and only means "scan to find out".
    #[inline]
    fn index_may_overlap(&self, addr: Addr, width: MemWidth) -> bool {
        let (g0, g1) = granule_span(addr, width);
        (g0..=g1).any(|g| self.granules[bucket(g)] != 0)
    }

    /// Index of the entry with sequence number `seq`, located by binary search
    /// (entries are age-ordered and sequence numbers increase with age order).
    #[inline]
    fn index_of(&self, seq: InstSeq) -> Option<usize> {
        let i = self.entries.partition_point(|e| e.seq < seq);
        (i < self.entries.len() && self.entries[i].seq == seq).then_some(i)
    }

    /// Restores the empty state for `capacity` — observationally identical to
    /// [`StoreQueue::new`] — retaining the entry storage.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "store queue capacity must be non-zero");
        self.capacity = capacity;
        self.entries.clear();
        self.unresolved = 0;
        self.unresolved_floor.set(0);
        self.granules = [0; GRANULE_BUCKETS];
        self.searches = 0;
        self.forwards = 0;
    }

    /// Maximum number of in-flight stores.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no stores are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if another store can be allocated.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Number of associative searches performed (statistics).
    pub fn searches(&self) -> u64 {
        self.searches
    }

    /// Number of searches that resulted in forwarding (statistics).
    pub fn forwards(&self) -> u64 {
        self.forwards
    }

    /// Allocates a store at the tail (rename order).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or if `seq` is not younger than the current tail.
    pub fn allocate(&mut self, seq: InstSeq, pc: Pc, ssn: Ssn) {
        assert!(self.has_space(), "store queue overflow");
        if let Some(tail) = self.entries.back() {
            assert!(seq > tail.seq, "stores must be allocated in program order");
        }
        self.entries.push_back(StoreEntry {
            seq,
            ssn,
            pc,
            addr: None,
            width: None,
            value: None,
        });
        self.unresolved += 1;
        // Sequence numbers are reused after a pipeline flush, so a fresh store can
        // land below the floor; pull the floor back to keep its invariant (no
        // unresolved store older than the floor).
        if seq < self.unresolved_floor.get() {
            self.unresolved_floor.set(seq);
        }
    }

    /// Records the address and data of the store with sequence number `seq`
    /// (store execution).
    ///
    /// # Panics
    ///
    /// Panics if the store is not in the queue.
    pub fn resolve(&mut self, seq: InstSeq, addr: Addr, width: MemWidth, value: Value) {
        let i = self
            .index_of(seq)
            .expect("resolving a store that is not in the store queue");
        let e = &mut self.entries[i];
        let previous = e.addr.zip(e.width);
        if e.addr.is_none() {
            self.unresolved -= 1;
        }
        e.addr = Some(addr);
        e.width = Some(width);
        e.value = Some(value);
        // A re-resolved store (e.g. a replayed execution) swaps its span in the
        // granule index; a first resolution just adds it.
        if let Some((old_addr, old_width)) = previous {
            self.index_remove(old_addr, old_width);
        }
        self.index_add(addr, width);
    }

    /// Returns `true` if any store older than `seq` has an unresolved address — the
    /// condition under which a load issuing now is speculative (and, under NLQ_LS, is
    /// marked for re-execution).
    pub fn has_unresolved_older_than(&self, seq: InstSeq) -> bool {
        if self.unresolved == 0 {
            return false;
        }
        let floor = self.unresolved_floor.get();
        if floor >= seq {
            return false;
        }
        // Entries older than the floor are known resolved: scan only [floor, seq).
        let start = self.entries.partition_point(|e| e.seq < floor);
        for e in self.entries.range(start..) {
            if e.seq >= seq {
                break;
            }
            if e.addr.is_none() {
                // `e` is the oldest unresolved store: remember it so the next
                // query skips straight to it.
                self.unresolved_floor.set(e.seq);
                return true;
            }
        }
        // No unresolved store older than `seq` — every unresolved store (there is
        // at least one) is at `seq` or younger, so the floor may advance to `seq`.
        self.unresolved_floor.set(seq);
        false
    }

    /// Associatively searches for the youngest store older than `load_seq` that
    /// overlaps `[addr, addr+width)`.
    pub fn search_forward(
        &mut self,
        load_seq: InstSeq,
        addr: Addr,
        width: MemWidth,
    ) -> ForwardResult {
        self.searches += 1;
        // The common case is no overlapping store at all: the granule index proves
        // it without touching the entries. (Unresolved stores are not in the index,
        // but they cannot overlap either — `overlaps` is false without an address.)
        if !self.index_may_overlap(addr, width) {
            return ForwardResult::None;
        }
        // Only stores older than the load can forward; binary-search the age-ordered
        // queue once instead of skipping younger entries one by one.
        let older = self.entries.partition_point(|e| e.seq < load_seq);
        for e in self.entries.range(..older).rev() {
            if e.overlaps(addr, width) {
                return match e.value {
                    Some(stored) if e.contains(addr, width) => {
                        self.forwards += 1;
                        let store_addr = e.addr.expect("overlapping store has an address");
                        let shift = (addr - store_addr) * 8;
                        ForwardResult::Forward {
                            seq: e.seq,
                            ssn: e.ssn,
                            pc: e.pc,
                            value: (stored >> shift) & width.mask(),
                        }
                    }
                    _ => ForwardResult::Conflict { seq: e.seq },
                };
            }
        }
        ForwardResult::None
    }

    /// The oldest in-flight store, if any.
    pub fn front(&self) -> Option<&StoreEntry> {
        self.entries.front()
    }

    /// Looks up an in-flight store by sequence number.
    pub fn get(&self, seq: InstSeq) -> Option<&StoreEntry> {
        self.index_of(seq).map(|i| &self.entries[i])
    }

    /// Removes and returns the oldest store (commit order).
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty or the oldest store is not `seq`.
    pub fn pop_commit(&mut self, seq: InstSeq) -> StoreEntry {
        let front = self
            .entries
            .pop_front()
            .expect("committing from an empty store queue");
        assert_eq!(front.seq, seq, "stores must commit in program order");
        match (front.addr, front.width) {
            (Some(addr), Some(width)) => self.index_remove(addr, width),
            _ => self.unresolved -= 1,
        }
        front
    }

    /// Discards every store younger than `survivor` (or all stores if `None`) after a
    /// pipeline flush. Returns the SSN of the youngest surviving store, if any.
    pub fn flush_after(&mut self, survivor: Option<InstSeq>) -> Option<Ssn> {
        match survivor {
            None => {
                self.entries.clear();
                self.unresolved = 0;
                self.granules = [0; GRANULE_BUCKETS];
            }
            Some(s) => {
                while matches!(self.entries.back(), Some(e) if e.seq > s) {
                    let e = self.entries.pop_back().expect("checked non-empty");
                    match (e.addr, e.width) {
                        (Some(addr), Some(width)) => self.index_remove(addr, width),
                        _ => self.unresolved -= 1,
                    }
                }
            }
        }
        self.entries.back().map(|e| e.ssn)
    }

    /// Iterates over the in-flight stores from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &StoreEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq() -> StoreQueue {
        StoreQueue::new(4)
    }

    #[test]
    fn allocate_resolve_commit_in_order() {
        let mut q = sq();
        q.allocate(1, 0x100, Ssn::new(1));
        q.allocate(3, 0x108, Ssn::new(2));
        assert_eq!(q.len(), 2);
        q.resolve(1, 0x1000, MemWidth::W8, 42);
        let e = q.pop_commit(1);
        assert_eq!(e.value, Some(42));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_allocation_panics() {
        let mut q = sq();
        q.allocate(5, 0, Ssn::new(1));
        q.allocate(3, 0, Ssn::new(2));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = StoreQueue::new(1);
        q.allocate(1, 0, Ssn::new(1));
        q.allocate(2, 0, Ssn::new(2));
    }

    #[test]
    fn forwarding_picks_youngest_older_matching_store() {
        let mut q = sq();
        q.allocate(1, 0x100, Ssn::new(1));
        q.allocate(3, 0x108, Ssn::new(2));
        q.allocate(5, 0x110, Ssn::new(3));
        q.resolve(1, 0x2000, MemWidth::W8, 0xAAAA);
        q.resolve(3, 0x2000, MemWidth::W8, 0xBBBB);
        q.resolve(5, 0x2000, MemWidth::W8, 0xCCCC);
        // A load at seq 4 sees store 3 (youngest older), not store 5 (younger).
        match q.search_forward(4, 0x2000, MemWidth::W8) {
            ForwardResult::Forward { seq, value, .. } => {
                assert_eq!(seq, 3);
                assert_eq!(value, 0xBBBB);
            }
            other => panic!("expected forwarding, got {other:?}"),
        }
    }

    #[test]
    fn forwarding_extracts_subword() {
        let mut q = sq();
        q.allocate(1, 0x100, Ssn::new(1));
        q.resolve(1, 0x3000, MemWidth::W8, 0x1122_3344_5566_7788);
        match q.search_forward(2, 0x3004, MemWidth::W4) {
            ForwardResult::Forward { value, .. } => assert_eq!(value, 0x1122_3344),
            other => panic!("expected forwarding, got {other:?}"),
        }
    }

    #[test]
    fn partial_overlap_is_a_conflict() {
        let mut q = sq();
        q.allocate(1, 0x100, Ssn::new(1));
        q.resolve(1, 0x4004, MemWidth::W4, 0xFF);
        // An 8-byte load at 0x4000 is only partially covered.
        assert_eq!(
            q.search_forward(2, 0x4000, MemWidth::W8),
            ForwardResult::Conflict { seq: 1 }
        );
    }

    #[test]
    fn unresolved_store_data_is_a_conflict() {
        let mut q = sq();
        q.allocate(1, 0x100, Ssn::new(1));
        // Address known but treat missing value as conflict: resolve() sets both, so
        // model an unresolved store as entirely unresolved — it simply doesn't match.
        assert_eq!(
            q.search_forward(2, 0x5000, MemWidth::W8),
            ForwardResult::None
        );
        assert!(q.has_unresolved_older_than(2));
        q.resolve(1, 0x5000, MemWidth::W8, 9);
        assert!(!q.has_unresolved_older_than(2));
    }

    #[test]
    fn younger_stores_never_forward() {
        let mut q = sq();
        q.allocate(5, 0x100, Ssn::new(1));
        q.resolve(5, 0x6000, MemWidth::W8, 1);
        assert_eq!(
            q.search_forward(2, 0x6000, MemWidth::W8),
            ForwardResult::None
        );
    }

    #[test]
    fn flush_discards_younger_stores_and_reports_survivor_ssn() {
        let mut q = sq();
        q.allocate(1, 0, Ssn::new(1));
        q.allocate(3, 0, Ssn::new(2));
        q.allocate(5, 0, Ssn::new(3));
        let ssn = q.flush_after(Some(3));
        assert_eq!(ssn, Some(Ssn::new(2)));
        assert_eq!(q.len(), 2);
        let none = q.flush_after(None);
        assert_eq!(none, None);
        assert!(q.is_empty());
    }

    #[test]
    fn reset_matches_new_and_unresolved_tracking_survives_flush() {
        let mut q = sq();
        q.allocate(1, 0, Ssn::new(1));
        q.allocate(3, 0, Ssn::new(2));
        q.allocate(5, 0, Ssn::new(3));
        assert!(q.has_unresolved_older_than(9));
        q.resolve(3, 0x1000, MemWidth::W8, 1);
        // Flush discards seq 5 (unresolved); seq 1 remains unresolved.
        q.flush_after(Some(3));
        assert!(q.has_unresolved_older_than(2));
        q.resolve(1, 0x2000, MemWidth::W8, 2);
        assert!(!q.has_unresolved_older_than(9));
        q.reset(4);
        assert_eq!(format!("{q:?}"), format!("{:?}", sq()));
    }

    /// The granule index must stay exact through the full entry lifecycle —
    /// resolve, commit, flush — and bucket aliasing (addresses 2048 bytes apart
    /// share a bucket) must never skip a real match.
    #[test]
    fn granule_index_tracks_lifecycle_and_tolerates_aliasing() {
        let mut q = StoreQueue::new(8);
        // Aliased addresses: 0x1000 and 0x1000 + 256*8 land in the same bucket.
        q.allocate(1, 0, Ssn::new(1));
        q.resolve(1, 0x1000 + 2048, MemWidth::W8, 7);
        // A load at the aliased (but distinct) address: the index says "maybe",
        // the scan says no — and the result must still be None.
        assert_eq!(
            q.search_forward(2, 0x1000, MemWidth::W8),
            ForwardResult::None
        );
        // The real match at the aliased address still forwards.
        q.allocate(3, 0, Ssn::new(2));
        q.resolve(3, 0x1000, MemWidth::W8, 9);
        match q.search_forward(4, 0x1000, MemWidth::W8) {
            ForwardResult::Forward { seq, value, .. } => {
                assert_eq!((seq, value), (3, 9));
            }
            other => panic!("expected forwarding, got {other:?}"),
        }
        // Committing and flushing removes spans: after both, the index is empty
        // again and searches early-out to None.
        q.pop_commit(1);
        q.flush_after(None);
        assert_eq!(
            q.search_forward(9, 0x1000, MemWidth::W8),
            ForwardResult::None
        );
        assert_eq!(format!("{:?}", q.granules), format!("{:?}", [0u16; 256]));
    }

    /// A load wider than the store still finds it when they share only one granule
    /// (partial overlap → conflict), exercising the multi-granule span logic.
    #[test]
    fn granule_index_covers_multi_granule_spans() {
        let mut q = StoreQueue::new(4);
        q.allocate(1, 0, Ssn::new(1));
        // A 4-byte store near the end of one granule...
        q.resolve(1, 0x2004, MemWidth::W4, 0xFF);
        // ...partially overlapped by an 8-byte load starting in the same granule.
        assert_eq!(
            q.search_forward(2, 0x2000, MemWidth::W8),
            ForwardResult::Conflict { seq: 1 }
        );
        // An 8-byte load in the *next* granule does not overlap the store.
        assert_eq!(
            q.search_forward(2, 0x2008, MemWidth::W8),
            ForwardResult::None
        );
    }

    /// The unresolved-floor hint must never change observable results — in
    /// particular across a flush that frees sequence numbers which are then
    /// reallocated below a previously advanced floor.
    #[test]
    fn unresolved_floor_survives_flush_and_seq_reuse() {
        let mut q = StoreQueue::new(8);
        q.allocate(1, 0, Ssn::new(1));
        q.allocate(5, 0, Ssn::new(2));
        q.resolve(1, 0x1000, MemWidth::W8, 0);
        // Advances the floor to 3: the only unresolved store (5) is younger.
        assert!(!q.has_unresolved_older_than(3));
        assert!(q.has_unresolved_older_than(9));
        // Flush discards store 5; its sequence-number range is reused.
        q.flush_after(Some(1));
        q.allocate(2, 0, Ssn::new(2));
        // Store 2 is unresolved and older than 3 — the stale floor must not hide it.
        assert!(q.has_unresolved_older_than(3));
        q.resolve(2, 0x2000, MemWidth::W8, 0);
        assert!(!q.has_unresolved_older_than(9));
    }

    #[test]
    fn search_statistics() {
        let mut q = sq();
        q.allocate(1, 0, Ssn::new(1));
        q.resolve(1, 0x7000, MemWidth::W8, 5);
        let _ = q.search_forward(2, 0x7000, MemWidth::W8);
        let _ = q.search_forward(2, 0x8000, MemWidth::W8);
        assert_eq!(q.searches(), 2);
        assert_eq!(q.forwards(), 1);
    }
}
