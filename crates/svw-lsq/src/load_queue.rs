//! An age-ordered queue of in-flight loads with (optional) associative ordering search.

use std::collections::VecDeque;

use svw_core::VulnWindow;
use svw_isa::{Addr, InstSeq, MemWidth, Pc, Value};

/// One in-flight load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadEntry {
    /// Dynamic sequence number.
    pub seq: InstSeq,
    /// Static PC.
    pub pc: Pc,
    /// Effective address, once the load has executed (eliminated loads keep `None`).
    pub addr: Option<Addr>,
    /// Access width.
    pub width: Option<MemWidth>,
    /// The value the load obtained when it executed (possibly wrong — that is the
    /// point of re-execution).
    pub value: Option<Value>,
    /// Whether some active optimization marked this load for re-execution.
    pub marked: bool,
    /// The load's store vulnerability window.
    pub window: VulnWindow,
}

impl LoadEntry {
    fn overlaps(&self, addr: Addr, width: MemWidth) -> bool {
        match (self.addr, self.width) {
            (Some(a), Some(w)) => {
                let (l0, l1) = (a, a + w.bytes());
                let (s0, s1) = (addr, addr + width.bytes());
                l0 < s1 && s0 < l1
            }
            _ => false,
        }
    }
}

/// An age-ordered load queue.
///
/// The conventional unit uses [`LoadQueue::search_violations`] (the associative port
/// that stores use to find prematurely issued younger loads). The NLQ removes that
/// port; the structure is then only a holding area for addresses/values/windows used
/// by the re-execution pipeline.
#[derive(Clone, Debug)]
pub struct LoadQueue {
    capacity: usize,
    entries: VecDeque<LoadEntry>,
    searches: u64,
}

impl LoadQueue {
    /// Creates an empty queue with space for `capacity` loads.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "load queue capacity must be non-zero");
        LoadQueue {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            searches: 0,
        }
    }

    /// Restores the empty state for `capacity` — observationally identical to
    /// [`LoadQueue::new`] — retaining the entry storage.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "load queue capacity must be non-zero");
        self.capacity = capacity;
        self.entries.clear();
        self.searches = 0;
    }

    /// Maximum number of in-flight loads.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no loads are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if another load can be allocated.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Number of associative (ordering) searches performed.
    pub fn searches(&self) -> u64 {
        self.searches
    }

    /// Allocates a load at the tail (rename order) with its dispatch-time window.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or allocation is out of program order.
    pub fn allocate(&mut self, seq: InstSeq, pc: Pc, window: VulnWindow) {
        assert!(self.has_space(), "load queue overflow");
        if let Some(tail) = self.entries.back() {
            assert!(seq > tail.seq, "loads must be allocated in program order");
        }
        self.entries.push_back(LoadEntry {
            seq,
            pc,
            addr: None,
            width: None,
            value: None,
            marked: false,
            window,
        });
    }

    /// Index of the entry with sequence number `seq`, located by binary search
    /// (entries are age-ordered and sequence numbers increase with age order).
    #[inline]
    fn index_of(&self, seq: InstSeq) -> Option<usize> {
        let i = self.entries.partition_point(|e| e.seq < seq);
        (i < self.entries.len() && self.entries[i].seq == seq).then_some(i)
    }

    /// Mutable access to the entry for `seq`.
    pub fn get_mut(&mut self, seq: InstSeq) -> Option<&mut LoadEntry> {
        self.index_of(seq).map(|i| &mut self.entries[i])
    }

    /// Shared access to the entry for `seq`.
    pub fn get(&self, seq: InstSeq) -> Option<&LoadEntry> {
        self.index_of(seq).map(|i| &self.entries[i])
    }

    /// Records the executed address/value of a load.
    ///
    /// # Panics
    ///
    /// Panics if the load is not in the queue.
    pub fn resolve(&mut self, seq: InstSeq, addr: Addr, width: MemWidth, value: Value) {
        let e = self
            .get_mut(seq)
            .expect("resolving a load that is not in the load queue");
        e.addr = Some(addr);
        e.width = Some(width);
        e.value = Some(value);
    }

    /// The conventional LQ's associative ordering search: a store that has just
    /// resolved its address looks for *younger* loads that already executed and read an
    /// overlapping address. Returns the oldest such load (the flush point). If
    /// `ignore_silent_value` is `Some(v)`, loads whose obtained value equals `v` are
    /// skipped (the "ignore ordering violations from silent stores" refinement).
    pub fn search_violations(
        &mut self,
        store_seq: InstSeq,
        addr: Addr,
        width: MemWidth,
        ignore_silent_value: Option<Value>,
    ) -> Option<InstSeq> {
        self.searches += 1;
        // Only loads younger than the store can violate; binary-search the
        // age-ordered queue once instead of filtering older entries one by one.
        let younger = self.entries.partition_point(|e| e.seq <= store_seq);
        self.entries
            .range(younger..)
            .filter(|e| e.overlaps(addr, width))
            .filter(|e| match (ignore_silent_value, e.value) {
                (Some(v), Some(got)) => got != v,
                _ => true,
            })
            .map(|e| e.seq)
            .min()
    }

    /// Removes the oldest load at commit.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty or the oldest load is not `seq`.
    pub fn pop_commit(&mut self, seq: InstSeq) -> LoadEntry {
        let front = self
            .entries
            .pop_front()
            .expect("committing from an empty load queue");
        assert_eq!(front.seq, seq, "loads must commit in program order");
        front
    }

    /// Discards every load younger than `survivor` (or all loads if `None`).
    pub fn flush_after(&mut self, survivor: Option<InstSeq>) {
        match survivor {
            None => self.entries.clear(),
            Some(s) => {
                while matches!(self.entries.back(), Some(e) if e.seq > s) {
                    self.entries.pop_back();
                }
            }
        }
    }

    /// Iterates over in-flight loads from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &LoadEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lq() -> LoadQueue {
        LoadQueue::new(8)
    }

    #[test]
    fn allocate_resolve_commit() {
        let mut q = lq();
        q.allocate(2, 0x100, VulnWindow::default());
        q.resolve(2, 0x1000, MemWidth::W8, 7);
        assert_eq!(q.get(2).unwrap().value, Some(7));
        let e = q.pop_commit(2);
        assert_eq!(e.addr, Some(0x1000));
        assert!(q.is_empty());
    }

    #[test]
    fn violation_search_finds_oldest_younger_overlapping_load() {
        let mut q = lq();
        q.allocate(4, 0x100, VulnWindow::default());
        q.allocate(6, 0x104, VulnWindow::default());
        q.allocate(8, 0x108, VulnWindow::default());
        q.resolve(4, 0x2000, MemWidth::W8, 1);
        q.resolve(6, 0x2000, MemWidth::W8, 1);
        q.resolve(8, 0x3000, MemWidth::W8, 1);
        // Store at seq 5 to 0x2000: load 6 violated (load 4 is older, load 8 unrelated).
        assert_eq!(q.search_violations(5, 0x2000, MemWidth::W8, None), Some(6));
        // Store at seq 3: load 4 is the oldest violator.
        assert_eq!(q.search_violations(3, 0x2000, MemWidth::W8, None), Some(4));
        // Unrelated address: no violation.
        assert_eq!(q.search_violations(3, 0x4000, MemWidth::W8, None), None);
    }

    #[test]
    fn silent_store_value_suppresses_violation() {
        let mut q = lq();
        q.allocate(4, 0x100, VulnWindow::default());
        q.resolve(4, 0x2000, MemWidth::W8, 42);
        // The store writes the same value the load already obtained: no flush needed.
        assert_eq!(q.search_violations(3, 0x2000, MemWidth::W8, Some(42)), None);
        // A different value is a real violation.
        assert_eq!(
            q.search_violations(3, 0x2000, MemWidth::W8, Some(43)),
            Some(4)
        );
    }

    #[test]
    fn unexecuted_loads_never_match() {
        let mut q = lq();
        q.allocate(4, 0x100, VulnWindow::default());
        assert_eq!(q.search_violations(3, 0x2000, MemWidth::W8, None), None);
    }

    #[test]
    fn flush_discards_younger_loads() {
        let mut q = lq();
        q.allocate(2, 0, VulnWindow::default());
        q.allocate(4, 0, VulnWindow::default());
        q.allocate(6, 0, VulnWindow::default());
        q.flush_after(Some(4));
        assert_eq!(q.len(), 2);
        q.flush_after(None);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = LoadQueue::new(1);
        q.allocate(1, 0, VulnWindow::default());
        q.allocate(2, 0, VulnWindow::default());
    }

    #[test]
    fn reset_matches_new() {
        let mut q = lq();
        q.allocate(2, 0x100, VulnWindow::default());
        q.resolve(2, 0x1000, MemWidth::W8, 7);
        let _ = q.search_violations(1, 0x1000, MemWidth::W8, None);
        q.reset(8);
        assert_eq!(format!("{q:?}"), format!("{:?}", lq()));
    }

    #[test]
    fn marked_flag_and_window_are_mutable() {
        let mut q = lq();
        q.allocate(2, 0, VulnWindow::default());
        let e = q.get_mut(2).unwrap();
        e.marked = true;
        e.window = e.window.shrink_to(svw_core::Ssn::new(9));
        assert!(q.get(2).unwrap().marked);
        assert_eq!(q.get(2).unwrap().window.boundary(), svw_core::Ssn::new(9));
    }
}
