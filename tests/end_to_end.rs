//! Cross-crate integration tests: workload generation → timing simulation → statistics,
//! across every load/store-unit organisation and re-execution mode.

use svw::core::SvwConfig;
use svw::cpu::{Cpu, LsqOrganization, MachineConfig, ReexecMode};
use svw::rle::ItConfig;
use svw::workloads::WorkloadProfile;

const LEN: usize = 6_000;

fn conv(extra: u64) -> LsqOrganization {
    LsqOrganization::Conventional {
        extra_load_latency: extra,
        store_exec_bandwidth: 1,
    }
}

fn nlq() -> LsqOrganization {
    LsqOrganization::Nlq {
        store_exec_bandwidth: 2,
    }
}

fn ssq() -> LsqOrganization {
    LsqOrganization::Ssq {
        fsq_entries: 16,
        fwd_buffer_entries: 8,
        store_exec_bandwidth: 2,
    }
}

/// Every organisation/mode combination retires the whole trace with architecturally
/// correct load values (the simulator asserts value correctness internally on every
/// retired load).
#[test]
fn all_configurations_complete_all_workload_flavours() {
    let svw_mode = ReexecMode::Svw(SvwConfig::paper_default());
    let configs = vec![
        MachineConfig::eight_wide("conv", conv(0), ReexecMode::None),
        MachineConfig::eight_wide("nlq-full", nlq(), ReexecMode::Full),
        MachineConfig::eight_wide("nlq-svw", nlq(), svw_mode),
        MachineConfig::eight_wide("ssq-full", ssq(), ReexecMode::Full),
        MachineConfig::eight_wide("ssq-svw", ssq(), svw_mode),
        MachineConfig::eight_wide("ssq-perfect", ssq(), ReexecMode::Perfect),
        MachineConfig::four_wide("rle-svw", conv(0), svw_mode).with_rle(ItConfig::paper_default()),
    ];
    for name in ["gcc", "mcf", "vortex"] {
        let program = WorkloadProfile::by_name(name).unwrap().generate(LEN, 11);
        for config in &configs {
            let label = format!("{} on {}", config.name, name);
            let stats = Cpu::new(config.clone(), &program).run();
            assert_eq!(stats.committed, program.len() as u64, "{label}");
            assert_eq!(
                stats.loads_filtered + stats.loads_reexecuted,
                stats.loads_marked,
                "{label}: every marked load is either filtered or re-executed"
            );
            assert!(stats.ipc() > 0.0, "{label}");
        }
    }
}

/// The filter is an optimization, not a semantics change: with and without SVW, the
/// same trace retires the same instruction mix.
#[test]
fn svw_changes_timing_not_architecture() {
    let program = WorkloadProfile::by_name("perl.d")
        .unwrap()
        .generate(LEN, 13);
    let full = Cpu::new(
        MachineConfig::eight_wide("ssq-full", ssq(), ReexecMode::Full),
        &program,
    )
    .run();
    let svw = Cpu::new(
        MachineConfig::eight_wide(
            "ssq-svw",
            ssq(),
            ReexecMode::Svw(SvwConfig::paper_default()),
        ),
        &program,
    )
    .run();
    assert_eq!(full.committed, svw.committed);
    assert_eq!(full.loads_retired, svw.loads_retired);
    assert_eq!(full.stores_retired, svw.stores_retired);
    // Timing, by contrast, should improve (or at least not regress).
    assert!(svw.ipc() >= full.ipc());
}

/// Simulations are deterministic: identical (config, trace) pairs give identical
/// cycle-level results.
#[test]
fn simulation_is_deterministic() {
    let program = WorkloadProfile::by_name("twolf").unwrap().generate(LEN, 17);
    let mk = || {
        MachineConfig::eight_wide(
            "nlq-svw",
            nlq(),
            ReexecMode::Svw(SvwConfig::paper_default()),
        )
    };
    let a = Cpu::new(mk(), &program).run();
    let b = Cpu::new(mk(), &program).run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.loads_reexecuted, b.loads_reexecuted);
    assert_eq!(a.loads_filtered, b.loads_filtered);
    assert_eq!(a.reexec_flushes, b.reexec_flushes);
    assert_eq!(a.branch_mispredictions, b.branch_mispredictions);
}

/// Traces themselves are reproducible and respect their profile.
#[test]
fn workload_generation_is_reproducible_across_the_suite() {
    for profile in WorkloadProfile::spec2000int() {
        let a = profile.generate(2_000, 5);
        let b = profile.generate(2_000, 5);
        assert_eq!(a.instructions(), b.instructions(), "{}", profile.name);
        let stats = a.stats();
        assert!(stats.load_fraction() > 0.10, "{}", profile.name);
        assert!(stats.store_fraction() > 0.03, "{}", profile.name);
    }
}
