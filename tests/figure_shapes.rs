//! Qualitative-shape tests: small-scale versions of the paper's headline claims that
//! must hold for the full reproduction to be meaningful. The figure binaries measure
//! the magnitudes; these tests guard the orderings.

use svw::core::SvwConfig;
use svw::cpu::{Cpu, CpuStats, LsqOrganization, MachineConfig, ReexecMode};
use svw::rle::ItConfig;
use svw::workloads::WorkloadProfile;

const LEN: usize = 12_000;

fn run(config: MachineConfig, program: &svw::isa::Program) -> CpuStats {
    Cpu::new(config, program).run()
}

/// Claim (Figure 5): the NLQ's natural filter marks only a small subset of loads, and
/// SVW removes the large majority of those re-executions.
#[test]
fn nlq_svw_removes_most_reexecutions() {
    let nlq = LsqOrganization::Nlq {
        store_exec_bandwidth: 2,
    };
    let mut total_full = 0.0;
    let mut total_svw = 0.0;
    for name in ["gcc", "perl.d", "twolf", "vortex"] {
        let program = WorkloadProfile::by_name(name).unwrap().generate(LEN, 2);
        let full = run(
            MachineConfig::eight_wide("f", nlq, ReexecMode::Full),
            &program,
        );
        let svw = run(
            MachineConfig::eight_wide("s", nlq, ReexecMode::Svw(SvwConfig::paper_default())),
            &program,
        );
        assert!(
            full.marked_rate() < 60.0,
            "{name}: NLQ marks a subset, got {}",
            full.marked_rate()
        );
        assert!(svw.reexec_rate() <= full.reexec_rate(), "{name}");
        total_full += full.reexec_rate();
        total_svw += svw.reexec_rate();
    }
    assert!(
        total_svw < 0.6 * total_full,
        "SVW should remove a large share of NLQ re-executions ({total_svw:.1} vs {total_full:.1})"
    );
}

/// Claim (Figure 6): the SSQ has no natural filter (100% of loads marked); SVW cuts the
/// re-execution stream by a large factor and never makes the SSQ slower.
#[test]
fn ssq_is_fully_marked_and_svw_recovers_performance() {
    let ssq = LsqOrganization::Ssq {
        fsq_entries: 16,
        fwd_buffer_entries: 8,
        store_exec_bandwidth: 2,
    };
    let program = WorkloadProfile::by_name("vortex").unwrap().generate(LEN, 3);
    let full = run(
        MachineConfig::eight_wide("f", ssq, ReexecMode::Full),
        &program,
    );
    let svw = run(
        MachineConfig::eight_wide("s", ssq, ReexecMode::Svw(SvwConfig::paper_default())),
        &program,
    );
    let perfect = run(
        MachineConfig::eight_wide("p", ssq, ReexecMode::Perfect),
        &program,
    );
    assert!(
        (full.marked_rate() - 100.0).abs() < 1e-9,
        "SSQ marks every load"
    );
    assert!(svw.reexec_rate() < 0.5 * full.reexec_rate());
    assert!(svw.ipc() >= full.ipc());
    assert!(perfect.ipc() >= svw.ipc() * 0.98);
}

/// Claim (Figure 7): RLE eliminates a substantial fraction of loads, SVW removes most
/// of the resulting re-executions, and disabling squash reuse removes even more.
#[test]
fn rle_svw_and_squash_reuse_ordering() {
    let conv = LsqOrganization::Conventional {
        extra_load_latency: 0,
        store_exec_bandwidth: 1,
    };
    let program = WorkloadProfile::by_name("crafty").unwrap().generate(LEN, 4);
    let rle_full = run(
        MachineConfig::four_wide("rle", conv, ReexecMode::Full).with_rle(ItConfig::paper_default()),
        &program,
    );
    let rle_svw = run(
        MachineConfig::four_wide("rle-svw", conv, ReexecMode::Svw(SvwConfig::paper_default()))
            .with_rle(ItConfig::paper_default()),
        &program,
    );
    let rle_svw_squ = run(
        MachineConfig::four_wide(
            "rle-svw-squ",
            conv,
            ReexecMode::Svw(SvwConfig::paper_default()),
        )
        .with_rle(ItConfig::no_squash_reuse()),
        &program,
    );
    assert!(
        rle_full.elimination_rate() > 5.0,
        "elimination rate {}",
        rle_full.elimination_rate()
    );
    assert_eq!(rle_full.loads_marked, rle_full.loads_eliminated);
    assert!(rle_svw.reexec_rate() < rle_full.reexec_rate());
    assert!(rle_svw_squ.eliminations_squash <= rle_svw.eliminations_squash);
}

/// Claim (§3.6): narrow SSNs only add wrap-around drains; they never change what gets
/// verified, and the performance cost shrinks as the width grows.
#[test]
fn ssn_width_only_costs_drains() {
    let ssq = LsqOrganization::Ssq {
        fsq_entries: 16,
        fwd_buffer_entries: 8,
        store_exec_bandwidth: 2,
    };
    let program = WorkloadProfile::by_name("gzip").unwrap().generate(LEN, 5);
    let mk = |width| {
        MachineConfig::eight_wide(
            "w",
            ssq,
            ReexecMode::Svw(SvwConfig {
                ssn_width: width,
                ..SvwConfig::paper_default()
            }),
        )
    };
    let narrow = run(mk(svw::core::SsnWidth::Bits(8)), &program);
    let wide = run(mk(svw::core::SsnWidth::Bits(16)), &program);
    let infinite = run(mk(svw::core::SsnWidth::Infinite), &program);
    assert!(narrow.wrap_drains > wide.wrap_drains);
    assert_eq!(infinite.wrap_drains, 0);
    assert_eq!(narrow.committed, infinite.committed);
    assert!(narrow.ipc() <= infinite.ipc() + 1e-9);
}
